"""REP022/REP023 suppression hygiene and the baseline ratchet."""

import json

import pytest

from repro.analysis import (
    apply_baseline,
    lint_paths,
    load_baseline,
    snapshot_baseline,
)
from repro.analysis.engine import Finding, baseline_key


def ids(findings):
    return sorted({f.rule_id for f in findings})


WALLCLOCK = "import time\nx = time.time()\n"


class TestSuppressionHygiene:
    def test_used_waiver_with_reason_is_clean(self, lint):
        source = "import time\nx = time.time()  # repro: noqa REP001 -- startup stamp\n"
        assert lint("repro/sim/mod.py", source) == []

    def test_used_waiver_without_reason_is_flagged(self, lint):
        source = "import time\nx = time.time()  # repro: noqa REP001\n"
        findings = lint("repro/sim/mod.py", source)
        assert ids(findings) == ["REP023"]

    def test_unused_waiver_is_stale(self, lint):
        source = "x = 1  # repro: noqa REP001 -- nothing here\n"
        findings = lint("repro/sim/mod.py", source)
        assert ids(findings) == ["REP022"]
        assert "stale suppression" in findings[0].message

    def test_unknown_rule_id_is_always_stale(self, lint):
        source = "x = 1  # repro: noqa REP999 -- never a rule\n"
        findings = lint("repro/sim/mod.py", source)
        assert ids(findings) == ["REP022"]

    def test_partial_run_never_reports_named_waivers_stale(self, lint):
        # REP007 did not run, so its waiver cannot be judged.
        source = "x = 1  # repro: noqa REP007 -- judged only when REP007 runs\n"
        findings = lint(
            "repro/sim/mod.py", source, select=["REP001", "REP022"]
        )
        assert findings == []

    def test_partial_run_never_reports_bare_waivers_stale(self, lint):
        source = "x = 1  # repro: noqa -- belt and braces\n"
        findings = lint("repro/sim/mod.py", source, ignore=["REP005"])
        assert findings == []

    def test_disabled_tier_makes_the_run_partial(self, lint):
        source = "x = 1  # repro: noqa -- belt and braces\n"
        findings = lint("repro/sim/mod.py", source, interleave=False)
        assert findings == []

    def test_bare_waiver_stale_on_full_run(self, lint):
        source = "x = 1  # repro: noqa -- suppresses nothing\n"
        findings = lint("repro/sim/mod.py", source)
        assert ids(findings) == ["REP022"]

    def test_noqa_text_inside_string_is_not_a_comment(self, lint):
        # tokenize-based scanning: noqa syntax quoted in a string or
        # docstring must not count as a live (and thus stale) waiver.
        source = (
            '"""Docs quoting the spelling:  # repro: noqa REP001."""\n'
            "MESSAGE = 'see # repro: noqa REP003'\n"
        )
        assert lint("repro/sim/mod.py", source) == []

    def test_waiver_hygiene_cannot_be_self_suppressed(self, lint):
        # A bare noqa must not excuse its own missing reason.
        source = "import time\nx = time.time()  # repro: noqa\n"
        findings = lint("repro/sim/mod.py", source)
        assert "REP023" in ids(findings)


class TestBaseline:
    def _findings(self):
        return [
            Finding("repro/a.py", 3, 1, "REP001", "wall clock"),
            Finding("repro/a.py", 9, 1, "REP001", "wall clock"),
            Finding("repro/b.py", 2, 5, "REP017", "stale snapshot"),
        ]

    def test_round_trip_matches_everything(self):
        findings = self._findings()
        snap = snapshot_baseline(findings)
        new, stale = apply_baseline(findings, snap["entries"])
        assert new == [] and stale == {}

    def test_extra_finding_is_new(self):
        findings = self._findings()
        snap = snapshot_baseline(findings[:2])
        new, stale = apply_baseline(findings, snap["entries"])
        assert [f.rule_id for f in new] == ["REP017"]
        assert stale == {}

    def test_line_shift_does_not_count_as_new(self):
        snap = snapshot_baseline(self._findings())
        shifted = [
            Finding("repro/a.py", 30, 1, "REP001", "wall clock"),
            Finding("repro/a.py", 90, 1, "REP001", "wall clock"),
            Finding("repro/b.py", 20, 5, "REP017", "stale snapshot"),
        ]
        new, stale = apply_baseline(shifted, snap["entries"])
        assert new == [] and stale == {}

    def test_fixed_finding_leaves_a_stale_entry(self):
        findings = self._findings()
        snap = snapshot_baseline(findings)
        new, stale = apply_baseline(findings[:2], snap["entries"])
        assert new == []
        assert stale == {baseline_key(findings[2]): 1}

    def test_parse_errors_are_never_baselined(self):
        broken = [Finding("repro/a.py", 1, 1, "REP000", "syntax error: x")]
        snap = snapshot_baseline(broken)
        assert snap["entries"] == {}
        new, _ = apply_baseline(broken, {baseline_key(broken[0]): 1})
        assert new == broken

    def test_load_rejects_malformed_payloads(self, tmp_path):
        target = tmp_path / "base.json"
        target.write_text("not json")
        with pytest.raises(ValueError, match="unreadable baseline"):
            load_baseline(target)
        target.write_text(json.dumps({"version": 2, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(target)
        target.write_text(json.dumps({"version": 1, "entries": {"k": 0}}))
        with pytest.raises(ValueError, match="positive counts"):
            load_baseline(target)

    def test_missing_file_is_a_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="unreadable baseline"):
            load_baseline(tmp_path / "absent.json")

    def test_baseline_with_live_lint(self, lint, tmp_path):
        findings = lint("repro/sim/mod.py", WALLCLOCK)
        assert ids(findings) == ["REP001"]
        snap = snapshot_baseline(findings)
        target = tmp_path / "repro" / "sim" / "mod.py"
        again = lint_paths([target], root=tmp_path)
        new, stale = apply_baseline(again, snap["entries"])
        assert new == [] and stale == {}
