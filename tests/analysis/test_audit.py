"""Runtime scheduling-race auditor: collisions, classification, fingerprint."""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.audit import (
    CATEGORY_CAUSAL_CHAIN,
    CATEGORY_COINCIDENT,
    CATEGORY_PROCESS_START,
    CATEGORY_SAME_PROCESS,
    DeterminismAuditor,
)
from repro.obs.bus import EventBus
from repro.obs.events import SchedulingCollision
from repro.sim import Environment

SRC = Path(__file__).resolve().parents[2] / "src"


def sleeper(env, delay):
    yield env.timeout(delay)


class TestIntentionalTie:
    """Two independent timeouts landing on one instant — the textbook
    unexplained collision the auditor exists to surface."""

    def run_tied_pair(self):
        env = Environment(audit=True)
        env.process(sleeper(env, 5.0), name="alice")
        env.process(sleeper(env, 5.0), name="bob")
        env.run()
        return env.auditor.report()

    def test_exactly_one_coincident_collision(self):
        report = self.run_tied_pair()
        assert report.collisions == 1
        coincident = [
            s for s in report.sites if s.category == CATEGORY_COINCIDENT
        ]
        assert len(coincident) == 1

    def test_site_names_both_processes(self):
        report = self.run_tied_pair()
        (site,) = [
            s for s in report.sites if s.category == CATEGORY_COINCIDENT
        ]
        assert site.time == 5.0
        assert site.processes == ("alice", "bob")
        assert site.kinds == ("Timeout", "Timeout")
        assert not site.explained

    def test_process_starts_are_explained(self):
        # The two Initialize bootstraps also tie at t=0; start order is
        # program order, so they must not count as unexplained.
        report = self.run_tied_pair()
        starts = [
            s for s in report.sites if s.category == CATEGORY_PROCESS_START
        ]
        assert len(starts) == 1
        assert starts[0].explained
        assert report.explained_collisions >= 1

    def test_untied_run_reports_zero_collisions(self):
        env = Environment(audit=True)
        env.process(sleeper(env, 3.0), name="alice")
        env.process(sleeper(env, 5.0), name="bob")
        env.run()
        report = env.auditor.report()
        assert report.collisions == 0

    def test_collision_event_reaches_the_bus(self):
        env = Environment(audit=True)
        seen = []
        bus = EventBus()
        bus.subscribe(SchedulingCollision, seen.append)
        env.auditor.attach_bus(bus)
        env.process(sleeper(env, 5.0), name="alice")
        env.process(sleeper(env, 5.0), name="bob")
        env.run()
        coincident = [e for e in seen if e.category == CATEGORY_COINCIDENT]
        assert len(coincident) == 1
        assert coincident[0].processes == ("alice", "bob")
        assert coincident[0].time == 5.0

    def test_audit_off_means_no_auditor(self):
        env = Environment()
        assert env.auditor is None
        env.process(sleeper(env, 5.0), name="alice")
        env.process(sleeper(env, 5.0), name="bob")
        env.run()  # identical behaviour, no recording


class TestClassification:
    """Category decisions exercised via the kernel, not by mocking."""

    def test_causal_chain_is_explained(self):
        # A zero-delay event scheduled during the tied instant (here:
        # the Process-end event cascading from the first timeout) is
        # ordered by program order, hence explained.
        env = Environment(audit=True)
        env.process(sleeper(env, 5.0), name="alice")
        env.process(sleeper(env, 5.0), name="bob")
        env.run()
        report = env.auditor.report()
        chains = [
            s for s in report.sites if s.category == CATEGORY_CAUSAL_CHAIN
        ]
        assert chains  # Timeout-vs-Process-end and end-vs-end ties
        assert all(s.explained for s in chains)

    def test_same_process_tie_is_explained(self):
        # One process waiting on two events that fire at the same
        # instant: relative order cannot change that process's view.
        env = Environment(audit=True)

        def waiter(env):
            yield env.all_of([env.timeout(5.0), env.timeout(5.0)])

        env.process(waiter(env), name="alice")
        env.run()
        report = env.auditor.report()
        assert report.collisions == 0
        same = [
            s for s in report.sites if s.category == CATEGORY_SAME_PROCESS
        ]
        assert same
        assert same[0].processes == ("alice",)

    def test_max_sites_caps_recording_but_not_counting(self):
        env = Environment(audit=True)
        env.auditor.max_sites = 2
        for i in range(6):
            env.process(sleeper(env, 5.0), name=f"p{i}")
        env.run()
        report = env.auditor.report()
        assert len(report.sites) == 2
        assert report.collisions + report.explained_collisions > 2


class TestFingerprint:
    def test_tie_order_does_not_change_fingerprint(self):
        # Start order of the two tied processes is the only difference;
        # the XOR accumulator must not see it.
        def run(first, second):
            env = Environment(audit=True)
            env.process(sleeper(env, 5.0), name=first)
            env.process(sleeper(env, 5.0), name=second)
            env.run()
            return env.auditor.report().fingerprint

        assert run("alice", "bob") == run("bob", "alice")

    def test_different_work_changes_fingerprint(self):
        def run(delay):
            env = Environment(audit=True)
            env.process(sleeper(env, delay), name="alice")
            env.run()
            return env.auditor.report().fingerprint

        assert run(3.0) != run(4.0)

    def test_summary_mentions_the_key_numbers(self):
        env = Environment(audit=True)
        env.process(sleeper(env, 1.0), name="alice")
        env.run()
        report = env.auditor.report()
        summary = report.summary()
        assert f"steps={report.steps}" in summary
        assert "collisions=0" in summary
        assert report.fingerprint in summary


class TestRunnerIntegration:
    def test_result_carries_a_report_when_enabled(self):
        from repro.experiments.config import SimulationConfig
        from repro.experiments.runner import run_simulation

        config = SimulationConfig(
            horizon_hours=0.05, determinism_audit=True
        )
        result = run_simulation(config)
        assert result.determinism is not None
        assert result.determinism.collisions == 0
        assert len(result.determinism.fingerprint) == 64

    def test_result_has_no_report_by_default(self):
        from repro.experiments.config import SimulationConfig
        from repro.experiments.runner import run_simulation

        result = run_simulation(SimulationConfig(horizon_hours=0.05))
        assert result.determinism is None

    def test_audit_does_not_perturb_the_run(self):
        from repro.experiments.config import SimulationConfig
        from repro.experiments.runner import run_simulation

        plain = run_simulation(SimulationConfig(horizon_hours=0.05))
        audited = run_simulation(
            SimulationConfig(horizon_hours=0.05, determinism_audit=True)
        )
        assert plain.hit_ratio == audited.hit_ratio
        assert plain.requests_served == audited.requests_served


_FP_SCRIPT = """\
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_simulation

result = run_simulation(
    SimulationConfig(horizon_hours=0.05, determinism_audit=True)
)
report = result.determinism
print(report.fingerprint, report.collisions)
"""


def _fingerprint_under_hash_seed(seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(SRC)
    out = subprocess.run(
        [sys.executable, "-c", _FP_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    fingerprint, collisions = out.stdout.split()
    return fingerprint, int(collisions)


class TestHashSeedIndependence:
    """The acceptance bar: identical fingerprints and zero unexplained
    collisions under different ``PYTHONHASHSEED`` values."""

    def test_fingerprint_is_hash_seed_invariant(self):
        fp_a, coll_a = _fingerprint_under_hash_seed("0")
        fp_b, coll_b = _fingerprint_under_hash_seed("424242")
        assert fp_a == fp_b
        assert coll_a == coll_b == 0
