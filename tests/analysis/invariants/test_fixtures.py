"""Mutation tests: each violation fixture trips exactly its checker.

Every ``fixtures/*.jsonl`` file is a minimal hand-built trace breaking
one protocol law.  Replaying it through :func:`check_trace` must
produce violations of *only* the intended checker id — proof both that
the checker detects its mutation and that no other checker
false-positives on the same stream.
"""

from pathlib import Path

import pytest

from repro.analysis.invariants import check_trace

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the one violation id it must trip.
EXPECTED = {
    "coh001_hit_after_expiry.jsonl": "COH001",
    "coh002_stale_hit.jsonl": "COH002",
    "coh003_hit_after_expired.jsonl": "COH003",
    "cau001_reply_without_request.jsonl": "CAU001",
    "cau002_complete_without_access.jsonl": "CAU002",
    "cau003_attempt_jump.jsonl": "CAU003",
    "con001_byte_mismatch.jsonl": "CON001",
    "con002_unmatched_drop_fault.jsonl": "CON002",
    "con003_over_capacity.jsonl": "CON003",
    "con003_reject_of_resident.jsonl": "CON003",
    "con003_admit_of_resident.jsonl": "CON003",
    "con004_complete_out_of_order.jsonl": "CON004",
    "con005_negative_wait.jsonl": "CON005",
}


def test_every_fixture_is_covered():
    on_disk = {path.name for path in FIXTURES.glob("*.jsonl")}
    assert on_disk == set(EXPECTED)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_fixture_trips_exactly_its_checker(name):
    report = check_trace(str(FIXTURES / name))
    assert not report.ok
    assert report.malformed_lines == 0
    assert report.unknown_records == 0
    tripped = {v.checker_id for v in report.violations}
    assert tripped == {EXPECTED[name]}, report.summary()


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_fixture_violations_carry_scope_and_message(name):
    report = check_trace(str(FIXTURES / name))
    for violation in report.violations:
        assert violation.scope
        assert violation.message
        assert violation.checker_id in violation.formatted()
