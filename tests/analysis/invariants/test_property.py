"""Property: every seeded run satisfies every invariant.

The checkers encode laws the simulation must obey for *any* seed, any
caching granularity and with faults on or off.  Hypothesis drives the
seed; the granularity × fault matrix is explicit.  A failure here
means either a genuine protocol bug or an over-strict checker — both
worth a red build.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.experiments.config import GRANULARITIES, SimulationConfig
from repro.experiments.runner import run_simulation


def _run(granularity, faults, seed):
    return run_simulation(
        SimulationConfig(
            granularity=granularity,
            num_clients=4,
            horizon_hours=1.0,
            seed=seed,
            invariants=True,
            loss_rate=0.05 if faults else 0.0,
            request_timeout_seconds=20.0 if faults else 0.0,
            retry_budget=2 if faults else 0,
        )
    )


@pytest.mark.parametrize("granularity", GRANULARITIES)
@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faults"])
@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_seeded_runs_satisfy_all_invariants(granularity, faults, seed):
    result = _run(granularity, faults, seed)
    report = result.invariants
    assert report is not None
    assert report.events_checked > 0
    assert report.ok, report.summary() + "\n" + "\n".join(
        v.formatted() for v in report.violations[:20]
    )


def test_invariants_off_attaches_nothing():
    result = run_simulation(
        SimulationConfig(num_clients=2, horizon_hours=0.5)
    )
    assert result.invariants is None


def test_in_process_and_trace_replay_agree(tmp_path):
    """The same run checked live and post-hoc reaches the same verdict
    over the same number of events."""
    from repro.analysis.invariants import check_trace

    path = tmp_path / "run.jsonl"
    result = run_simulation(
        SimulationConfig(
            num_clients=2,
            horizon_hours=0.5,
            invariants=True,
            trace_path=str(path),
        )
    )
    replay = check_trace(str(path))
    assert result.invariants.ok and replay.ok
    assert replay.events_checked == result.invariants.events_checked
