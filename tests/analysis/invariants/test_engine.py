"""Engine behaviour: dispatch, caps, trace decoding, reconciliation."""

import dataclasses
import json

from repro.analysis.invariants import (
    CacheConservationChecker,
    ChannelConservationChecker,
    CoherenceChecker,
    InvariantChecker,
    InvariantEngine,
    RunContext,
    check_trace,
    decode_record,
    default_checkers,
)
from repro.obs.bus import EventBus
from repro.obs.events import (
    CacheAccess,
    CacheAdmit,
    CacheReject,
    QueryComplete,
    SchedulingCollision,
)


def access(time, **overrides):
    fields = dict(
        time=time,
        client_id=0,
        key="k",
        hit=False,
        error=False,
        answered=True,
        connected=True,
    )
    fields.update(overrides)
    return CacheAccess(**fields)


class RecordingChecker(InvariantChecker):
    checker_id = "REC"
    title = "records what it sees"
    event_types = (CacheAccess,)

    def __init__(self):
        super().__init__()
        self.seen = []
        self.finalized = 0
        self.reconciled = []

    def on_event(self, event):
        self.seen.append(event)

    def finalize(self):
        self.finalized += 1

    def reconcile(self, context):
        self.reconciled.append(context)


class FiringChecker(InvariantChecker):
    checker_id = "FIRE"
    title = "one violation per event"
    event_types = (CacheAccess,)

    def on_event(self, event):
        self.violation("FIRE001", event.time, "scope", "boom")


class TestDispatch:
    def test_checker_sees_only_its_types(self):
        checker = RecordingChecker()
        engine = InvariantEngine([checker])
        engine.feed(access(1.0))
        engine.feed(QueryComplete(2.0, 0, 1, 1.0, True))
        assert [e.time for e in checker.seen] == [1.0]
        assert engine.events_checked == 2

    def test_attach_subscribes_wanted_types(self):
        bus = EventBus()
        checker = RecordingChecker()
        InvariantEngine([checker]).attach(bus)
        assert bus.wants(CacheAccess)
        bus.emit(access(3.0))
        assert len(checker.seen) == 1

    def test_attach_makes_guarded_cache_events_wanted(self):
        bus = EventBus()
        InvariantEngine().attach(bus)
        assert bus.wants(CacheAdmit)

    def test_default_checkers_are_fresh_instances(self):
        a, b = default_checkers(), default_checkers()
        assert {c.checker_id for c in a} == {c.checker_id for c in b}
        assert not any(x is y for x in a for y in b)


class TestViolationCap:
    def test_overflow_is_counted_not_kept(self):
        engine = InvariantEngine([FiringChecker()], max_violations=3)
        for i in range(10):
            engine.feed(access(float(i)))
        report = engine.report()
        assert len(report.violations) == 3
        assert report.dropped_violations == 7
        assert report.total_violations == 10
        assert not report.ok
        assert "10 violation(s)" in report.summary()

    def test_finalize_is_idempotent(self):
        checker = RecordingChecker()
        engine = InvariantEngine([checker])
        engine.finalize()
        engine.report()
        engine.reconcile(RunContext())
        assert checker.finalized == 1
        assert len(checker.reconciled) == 1


class TestDecodeRecord:
    def test_round_trips_an_event(self):
        from repro.obs.sinks import encode_event

        event = access(2.5, hit=True, age_seconds=1.25)
        decoded = decode_record(encode_event(event))
        assert decoded == event

    def test_lists_become_tuples(self):
        record = {
            "type": "SchedulingCollision",
            "time": 1.0,
            "priority": 2,
            "processes": ["a", "b"],
            "category": "coincident",
        }
        decoded = decode_record(record)
        assert isinstance(decoded, SchedulingCollision)
        assert decoded.processes == ("a", "b")

    def test_cache_reject_round_trips(self):
        record = {
            "type": "CacheReject",
            "time": 3.0,
            "client_id": 4,
            "cache": "object-cache",
            "key": "k",
            "size_bytes": 64,
        }
        decoded = decode_record(record)
        assert isinstance(decoded, CacheReject)
        assert decoded.size_bytes == 64

    def test_unknown_type_is_none(self):
        assert decode_record({"type": "NotAnEvent", "time": 1.0}) is None

    def test_missing_required_field_is_none(self):
        assert decode_record({"type": "CacheAccess", "time": 1.0}) is None

    def test_missing_optional_field_uses_default(self):
        record = {
            "type": "CacheAdmit",
            "time": 1.0,
            "client_id": 0,
            "cache": "c",
            "key": "k",
            "size_bytes": 10,
            "evictions": 0,
        }
        decoded = decode_record(record)
        assert decoded.expires_at == float("inf")
        assert decoded.capacity_bytes == 0


class TestCheckTrace:
    def test_malformed_lines_are_skipped_and_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            json.dumps(
                {"type": "QueryComplete", "time": 1.0, "client_id": 0,
                 "query_id": 1, "response_seconds": 1.0,
                 "connected": True}
            ),
            '{"type": "CacheAccess", "time": 2.0, "cli',  # truncated
        ]
        path.write_text("\n".join(lines) + "\n")
        report = check_trace(str(path))
        assert report.malformed_lines == 1
        assert report.events_checked == 1
        # The complete-without-access law still fires on what decoded.
        assert {v.checker_id for v in report.violations} == {"CAU002"}

    def test_unknown_records_are_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "FutureEvent", "time": 1.0}\n')
        report = check_trace(str(path))
        assert report.unknown_records == 1
        assert report.events_checked == 0
        assert report.ok

    def test_empty_trace_is_ok(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        assert check_trace(str(path)).ok


@dataclasses.dataclass
class FakeRatio:
    hits: int
    total: int


@dataclasses.dataclass
class FakeMetrics:
    hit: FakeRatio
    error: FakeRatio
    stale_served_accesses: int = 0
    unanswered_accesses: int = 0


class TestReconcile:
    def test_coherence_counts_must_match_metrics(self):
        checker = CoherenceChecker()
        engine = InvariantEngine([checker])
        engine.feed(access(1.0, hit=True))
        context = RunContext(
            metrics={0: FakeMetrics(FakeRatio(0, 1), FakeRatio(0, 1))}
        )
        engine.reconcile(context)
        report = engine.report()
        assert {v.checker_id for v in report.violations} == {"COH004"}

    def test_matching_metrics_are_clean(self):
        checker = CoherenceChecker()
        engine = InvariantEngine([checker])
        engine.feed(access(1.0, hit=True))
        context = RunContext(
            metrics={0: FakeMetrics(FakeRatio(1, 1), FakeRatio(0, 1))}
        )
        engine.reconcile(context)
        assert engine.report().ok

    def test_cache_ledger_must_match_live_cache(self):
        @dataclasses.dataclass
        class FakeCache:
            used_bytes: int
            admissions: int
            evictions: int
            rejections: int = 0

        engine = InvariantEngine([CacheConservationChecker()])
        engine.feed(
            CacheAdmit(1.0, 0, "object-cache", "k", 100, 0, 50.0, 0)
        )
        context = RunContext(
            caches={(0, "object-cache"): FakeCache(64, 1, 0)}
        )
        engine.reconcile(context)
        assert {v.checker_id for v in engine.report().violations} == {
            "CON007"
        }

    def test_rejection_ledger_must_match_live_cache(self):
        @dataclasses.dataclass
        class FakeCache:
            used_bytes: int = 0
            admissions: int = 0
            evictions: int = 0
            rejections: int = 0

        engine = InvariantEngine([CacheConservationChecker()])
        engine.feed(
            CacheReject(2.0, 0, "object-cache", "other-key", 100)
        )
        context = RunContext(
            caches={(0, "object-cache"): FakeCache(rejections=2)}
        )
        engine.reconcile(context)
        assert {v.checker_id for v in engine.report().violations} == {
            "CON007"
        }

    def test_matching_rejection_ledger_is_clean(self):
        @dataclasses.dataclass
        class FakeCache:
            used_bytes: int = 0
            admissions: int = 0
            evictions: int = 0
            rejections: int = 0

        engine = InvariantEngine([CacheConservationChecker()])
        engine.feed(
            CacheReject(2.0, 0, "object-cache", "other-key", 100)
        )
        context = RunContext(
            caches={(0, "object-cache"): FakeCache(rejections=1)}
        )
        engine.reconcile(context)
        assert engine.report().ok

    def test_channel_totals_must_match_stats(self):
        @dataclasses.dataclass
        class FakeStats:
            bytes_carried: float = 0.0
            bytes_delivered: float = 0.0
            bytes_aborted: float = 0.0
            messages_dropped: int = 0
            messages_aborted: int = 0

        engine = InvariantEngine([ChannelConservationChecker()])
        context = RunContext(
            channel_stats={"uplink": FakeStats(bytes_carried=128.0)},
            raw_bytes=128.0,
        )
        engine.reconcile(context)
        tripped = {v.checker_id for v in engine.report().violations}
        assert tripped == {"CON006"}
