"""The ``repro lint`` exit-code contract and dataflow-tier flags.

The contract CI relies on: 0 = clean, 1 = rule violations, 2 = the lint
itself could not do its job (unparseable input, unknown rule ids).  A
2 must never be mistaken for "the tree has findings" — it means the
report is incomplete.
"""

import json
import textwrap

import pytest

from repro.cli import main


@pytest.fixture
def tree(tmp_path):
    """tree({"repro/core/mod.py": src, ...}) -> lintable directory path."""

    def _write(files):
        for rel_path, source in files.items():
            target = tmp_path / rel_path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return str(tmp_path)

    return _write


CLEAN = (
    "def total(a_seconds: float, b_seconds: float) -> float:\n"
    "    return a_seconds + b_seconds\n"
)
MIXED = (
    "def total(a_seconds: float, b_bytes: float) -> float:\n"
    "    return a_seconds + b_bytes\n"
)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        root = tree({"repro/core/mod.py": CLEAN})
        assert main(["lint", root]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_violations_exit_one(self, tree, capsys):
        root = tree({"repro/core/mod.py": MIXED})
        assert main(["lint", root]) == 1
        assert "REP011" in capsys.readouterr().out

    def test_unparseable_input_exits_two(self, tree, capsys):
        root = tree({"repro/core/mod.py": "def broken(:\n"})
        assert main(["lint", root]) == 2
        assert "REP000" in capsys.readouterr().out

    def test_parse_error_beats_violations(self, tree, capsys):
        # A tree with both real findings and a syntax error is an
        # incomplete report: the config-error code must win.
        root = tree(
            {
                "repro/core/bad.py": MIXED,
                "repro/core/broken.py": "def broken(:\n",
            }
        )
        assert main(["lint", root]) == 2

    def test_unknown_rule_id_exits_two(self, tree, capsys):
        root = tree({"repro/core/mod.py": CLEAN})
        assert main(["lint", "--select", "REP999", root]) == 2
        assert "unknown rule ids" in capsys.readouterr().err


class TestDataflowFlags:
    def test_no_dataflow_skips_the_unit_tier(self, tree, capsys):
        root = tree({"repro/core/mod.py": MIXED})
        assert main(["lint", "--no-dataflow", root]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_report_carries_dataflow_findings(self, tree, capsys):
        root = tree({"repro/core/mod.py": MIXED})
        assert main(["lint", "--format", "json", root]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["REP011"] == 1
        (finding,) = payload["findings"]
        assert finding["rule_id"] == "REP011"
        assert finding["line"] == 2

    def test_list_rules_documents_the_unit_tier(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP011", "REP012", "REP013", "REP014", "REP015"):
            assert rule_id in out

    def test_list_rules_documents_the_interleave_tier(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "REP016",
            "REP017",
            "REP018",
            "REP019",
            "REP020",
            "REP021",
            "REP022",
            "REP023",
            "REP024",
        ):
            assert rule_id in out


#: Trips REP016 (read-modify-write across a yield) and nothing else.
INTERLEAVE_BAD = (
    "class Counter:\n"
    "    def run(self):\n"
    "        total = self.bytes_sent\n"
    "        yield self.env.timeout(1.0)\n"
    "        self.bytes_sent = total + 1\n"
)


class TestInterleaveFlags:
    def test_interleave_findings_exit_one(self, tree, capsys):
        root = tree({"repro/sim/mod.py": INTERLEAVE_BAD})
        assert main(["lint", root]) == 1
        assert "REP016" in capsys.readouterr().out

    def test_no_interleave_skips_the_tier(self, tree, capsys):
        root = tree({"repro/sim/mod.py": INTERLEAVE_BAD})
        assert main(["lint", "--no-interleave", root]) == 0
        assert "no findings" in capsys.readouterr().out


class TestBaselineFlags:
    def test_write_then_check_is_clean(self, tree, tmp_path, capsys):
        root = tree({"repro/sim/mod.py": INTERLEAVE_BAD})
        base = str(tmp_path / "base.json")
        assert main(["lint", "--write-baseline", base, root]) == 0
        assert main(["lint", "--baseline", base, root]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_new_finding_beyond_baseline_exits_one(self, tree, tmp_path, capsys):
        root = tree({"repro/sim/mod.py": INTERLEAVE_BAD})
        base = str(tmp_path / "base.json")
        assert main(["lint", "--write-baseline", base, root]) == 0
        tree({"repro/sim/extra.py": INTERLEAVE_BAD})
        assert main(["lint", "--baseline", base, root]) == 1
        out = capsys.readouterr().out
        assert "repro/sim/extra.py" in out
        assert "repro/sim/mod.py" not in out

    def test_stale_baseline_entry_exits_one(self, tree, tmp_path, capsys):
        root = tree({"repro/sim/mod.py": INTERLEAVE_BAD})
        base = str(tmp_path / "base.json")
        assert main(["lint", "--write-baseline", base, root]) == 0
        (tmp_path / "repro" / "sim" / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--baseline", base, root]) == 1
        captured = capsys.readouterr()
        assert "stale baseline entry" in captured.err

    def test_unreadable_baseline_exits_two(self, tree, tmp_path, capsys):
        root = tree({"repro/core/mod.py": CLEAN})
        base = tmp_path / "base.json"
        base.write_text("not json")
        assert main(["lint", "--baseline", str(base), root]) == 2
        assert "unreadable baseline" in capsys.readouterr().err

    def test_parse_error_still_beats_baseline(self, tree, tmp_path, capsys):
        root = tree({"repro/core/broken.py": "def broken(:\n"})
        base = str(tmp_path / "base.json")
        # REP000 is never baselined: writing reports it and exits 2.
        assert main(["lint", "--write-baseline", base, root]) == 2
        assert main(["lint", "--baseline", base, root]) == 2
