"""REP011–REP015 — the unit/dimension dataflow tier.

Every rule gets a good/bad fixture pair, and the bad fixture must trip
*only* its own rule (the acceptance bar for adding a rule to the tier).
The cross-module tests are the reason the tier exists: a config knob
declared in ``repro/experiments/config.py`` and consumed with the wrong
unit in ``repro/net/`` is invisible to any per-file rule.
"""

from repro.analysis import lint_paths


def ids(findings):
    return sorted({f.rule_id for f in findings})


UNIT_RULES = ["REP011", "REP012", "REP013", "REP014", "REP015"]


# ----------------------------------------------------------------------
# REP011 — arithmetic mixing incompatible units
# ----------------------------------------------------------------------
class TestIncompatibleArithmetic:
    def test_adding_bytes_to_seconds_trips_only_rep011(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            def deadline(delay_seconds: float, size_bytes: float) -> float:
                return delay_seconds + size_bytes
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP011"]
        assert "seconds" in findings[0].message
        assert "bytes" in findings[0].message

    def test_same_unit_arithmetic_is_clean(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            def total(first_seconds: float, second_seconds: float) -> float:
                return first_seconds + second_seconds
            """,
        )
        assert findings == []

    def test_bytes_times_bps_needs_the_bit_conversion(self, lint):
        findings = lint(
            "repro/net/mod.py",
            """\
            def airtime(size_bytes: float, bandwidth_bps: float) -> float:
                return size_bytes / bandwidth_bps
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP011"]
        assert "BITS_PER_BYTE" in findings[0].message

    def test_literal_scale_factors_never_flag(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            def double(delay_seconds: float) -> float:
                return 2.0 * delay_seconds + 0.5
            """,
        )
        assert findings == []

    def test_augmented_assignment_is_checked(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            def accumulate(total_seconds: float, chunk_bytes: float) -> float:
                total_seconds += chunk_bytes
                return total_seconds
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP011"]


# ----------------------------------------------------------------------
# REP012 — wall-clock reading into a sim-time parameter
# ----------------------------------------------------------------------
class TestWallClockIntoSimTime:
    # The fixtures route the wall-clock reading through an annotated
    # helper rather than calling time.time() in sim code directly, so
    # REP001 (the per-file wall-clock rule) stays out of the picture.
    def test_wall_seconds_into_sim_parameter_trips_only_rep012(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            """\
            from repro._units import Seconds, WallSeconds

            def wall_elapsed() -> WallSeconds:
                return 0.0

            def schedule(delay: Seconds) -> None:
                pass

            def bad() -> None:
                schedule(wall_elapsed())
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP012"]
        assert "wall" in findings[0].message.lower()

    def test_sim_seconds_into_sim_parameter_is_clean(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            """\
            from repro._units import Seconds

            def sim_now() -> Seconds:
                return 0.0

            def schedule(delay: Seconds) -> None:
                pass

            def good() -> None:
                schedule(sim_now())
            """,
        )
        assert findings == []

    def test_direct_time_module_call_is_recognised(self, lint):
        findings = lint(
            "repro/experiments/mod.py",
            """\
            import time

            from repro._units import Seconds

            def schedule(delay: Seconds) -> None:
                pass

            def bad() -> None:
                schedule(time.perf_counter())
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP012"]


# ----------------------------------------------------------------------
# REP013 — magic bandwidth/size/horizon literals
# ----------------------------------------------------------------------
class TestMagicLiterals:
    def test_bare_3600_trips_only_rep013(self, lint):
        findings = lint(
            "repro/experiments/mod.py",
            """\
            def horizon(hours: float) -> float:
                return hours * 3600.0
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP013"]
        assert "HOUR" in findings[0].message

    def test_the_unit_constant_spelling_is_clean(self, lint):
        findings = lint(
            "repro/experiments/mod.py",
            """\
            from repro._units import HOUR

            def horizon(hours: float) -> float:
                return hours * HOUR
            """,
        )
        assert findings == []

    def test_wireless_bandwidth_literal_is_flagged(self, lint):
        findings = lint(
            "repro/net/mod.py",
            """\
            BANDWIDTH = 19_200
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP013"]
        assert "KBPS" in findings[0].message

    def test_non_repro_paths_are_exempt(self, lint):
        findings = lint(
            "scripts/mod.py",
            """\
            BANDWIDTH = 19_200
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP014 — declared one unit, consumed as another
# ----------------------------------------------------------------------
class TestDeclaredMismatch:
    def test_returning_bytes_as_seconds_trips_only_rep014(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            from repro._units import Seconds

            def latency(payload_bytes: float) -> Seconds:
                return payload_bytes
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP014"]

    def test_returning_seconds_as_seconds_is_clean(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            from repro._units import Seconds

            def latency(delay_seconds: float) -> Seconds:
                return delay_seconds
            """,
        )
        assert findings == []

    def test_annotated_assignment_is_checked(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            from repro._units import Bytes

            def stash(delay_seconds: float) -> None:
                kept: Bytes = delay_seconds
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP014"]

    def test_suppression_with_reason_silences_the_finding(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            from repro._units import Seconds

            def latency(payload_bytes: float) -> Seconds:
                return payload_bytes  # repro: noqa REP014 -- suppression fixture
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP015 — comparison across unit tags
# ----------------------------------------------------------------------
class TestComparisonMismatch:
    def test_comparing_seconds_to_bytes_trips_only_rep015(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            def expired(deadline_seconds: float, size_bytes: float) -> bool:
                return deadline_seconds < size_bytes
            """,
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP015"]

    def test_comparing_like_quantities_is_clean(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            def expired(now_seconds: float, deadline_seconds: float) -> bool:
                return now_seconds >= deadline_seconds
            """,
        )
        assert findings == []

    def test_comparison_against_a_literal_is_clean(self, lint):
        findings = lint(
            "repro/core/mod.py",
            """\
            def positive(delay_seconds: float) -> bool:
                return delay_seconds > 0.0
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# Cross-module symbol resolution — the tier's reason to exist
# ----------------------------------------------------------------------
CONFIG_MODULE = """\
import dataclasses

from repro._units import Bytes, Seconds


@dataclasses.dataclass
class SimulationConfig:
    ir_interval: Seconds = 1000.0
    payload_bytes: Bytes = 512.0
"""


class TestCrossModuleResolution:
    def test_config_knob_consumed_as_wrong_unit_across_modules(
        self, lint_project
    ):
        findings = lint_project(
            {
                "repro/experiments/config.py": CONFIG_MODULE,
                "repro/net/server.py": """\
                from repro.experiments.config import SimulationConfig

                def broadcast(size_bytes: float) -> None:
                    pass

                def run(config: SimulationConfig) -> None:
                    broadcast(config.ir_interval)
                """,
            },
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP014"]
        assert findings[0].path.endswith("repro/net/server.py")

    def test_config_knob_consumed_with_matching_unit_is_clean(
        self, lint_project
    ):
        findings = lint_project(
            {
                "repro/experiments/config.py": CONFIG_MODULE,
                "repro/net/server.py": """\
                from repro.experiments.config import SimulationConfig

                def broadcast(size_bytes: float) -> None:
                    pass

                def run(config: SimulationConfig) -> None:
                    broadcast(config.payload_bytes)
                """,
            },
            select=UNIT_RULES,
        )
        assert findings == []

    def test_imported_constant_carries_its_unit_tag(self, lint_project):
        findings = lint_project(
            {
                "repro/experiments/defaults.py": """\
                from repro._units import Seconds

                TIMEOUT: Seconds = 30.0
                """,
                "repro/net/client.py": """\
                from repro.experiments.defaults import TIMEOUT

                def send(size_bytes: float) -> float:
                    return size_bytes + TIMEOUT
                """,
            },
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP011"]

    def test_dataclass_constructor_checks_keyword_units(self, lint_project):
        findings = lint_project(
            {
                "repro/experiments/config.py": CONFIG_MODULE,
                "repro/experiments/sweep.py": """\
                from repro.experiments.config import SimulationConfig

                def build(size_bytes: float) -> SimulationConfig:
                    return SimulationConfig(ir_interval=size_bytes)
                """,
            },
            select=UNIT_RULES,
        )
        assert ids(findings) == ["REP014"]

    def test_ambiguous_field_declarations_stay_silent(self, lint_project):
        # Two classes declare the same field name with different units:
        # the project index must drop it rather than guess.
        findings = lint_project(
            {
                "repro/core/first.py": """\
                import dataclasses

                from repro._units import Seconds

                @dataclasses.dataclass
                class Window:
                    span: Seconds = 1.0
                """,
                "repro/core/second.py": """\
                import dataclasses

                from repro._units import Bytes

                @dataclasses.dataclass
                class Buffer:
                    span: Bytes = 1.0
                """,
                "repro/core/use.py": """\
                from repro.core.first import Window

                def consume(size_bytes: float, window: Window) -> float:
                    return size_bytes + window.span
                """,
            },
        )
        assert findings == []


# ----------------------------------------------------------------------
# Gating: dataflow=False skips the tier entirely
# ----------------------------------------------------------------------
class TestGating:
    BAD = """\
    def deadline(delay_seconds: float, size_bytes: float) -> float:
        return delay_seconds + size_bytes
    """

    def test_dataflow_false_drops_the_unit_rules(self, lint):
        findings = lint("repro/core/mod.py", self.BAD, dataflow=False)
        assert "REP011" not in ids(findings)

    def test_dataflow_true_is_the_default(self, lint):
        findings = lint("repro/core/mod.py", self.BAD)
        assert "REP011" in ids(findings)

    def test_select_can_name_a_dataflow_rule_directly(self, lint):
        findings = lint("repro/core/mod.py", self.BAD, select=["REP011"])
        assert ids(findings) == ["REP011"]
