"""REP008-REP010: metrics mutation, event reachability, dead knobs."""


def ids(findings):
    return sorted({f.rule_id for f in findings})


#: A minimal fake event taxonomy for the REP009 project rule.
EVENTS_MODULE = """\
import dataclasses


@dataclasses.dataclass(frozen=True)
class SimEvent:
    time: float


@dataclasses.dataclass(frozen=True)
class GoodEvent(SimEvent):
    client_id: int


@dataclasses.dataclass(frozen=True)
class PhantomEvent(SimEvent):
    client_id: int


@dataclasses.dataclass(frozen=True)
class DeadEvent(SimEvent):
    client_id: int
"""

#: Emits GoodEvent and DeadEvent; guards DeadEvent behind wants().
EMITTER_MODULE = """\
from repro.obs.events import DeadEvent, GoodEvent


def tick(bus):
    bus.emit(GoodEvent(0.0, 1))
    if bus.wants(DeadEvent):
        bus.emit(DeadEvent(0.0, 1))
"""

#: Consumes (subscribes to) GoodEvent and PhantomEvent.
CONSUMER_MODULE = """\
from repro.obs.events import GoodEvent, PhantomEvent


def install(bus, sink):
    bus.subscribe(GoodEvent, sink)
    bus.subscribe(PhantomEvent, sink)
"""


class TestREP008InlineMetricsMutation:
    def test_augmented_metrics_write_is_flagged(self, lint):
        findings = lint(
            "repro/client/mod.py",
            "def f(self):\n    self.metrics.retries += 1\n",
            select=["REP008"],
        )
        assert ids(findings) == ["REP008"]
        assert "metrics" in findings[0].message

    def test_nested_counter_write_is_flagged(self, lint):
        findings = lint(
            "repro/client/mod.py",
            "def f(client):\n    client.metrics.hit.total += 1\n",
            select=["REP008"],
        )
        assert ids(findings) == ["REP008"]

    def test_metrics_layer_itself_may_mutate(self, lint):
        findings = lint(
            "repro/metrics/collectors.py",
            "def f(self):\n    self.metrics.retries += 1\n",
            select=["REP008"],
        )
        assert findings == []

    def test_unrelated_aug_assign_is_fine(self, lint):
        findings = lint(
            "repro/client/mod.py",
            "def f(self):\n    self.count += 1\n",
            select=["REP008"],
        )
        assert findings == []

    def test_plain_local_named_metrics_is_fine(self, lint):
        # `metrics += 1` on a bare name is not a counter write through
        # a metrics object.
        findings = lint(
            "repro/client/mod.py",
            "def f(metrics):\n    metrics += 1\n    return metrics\n",
            select=["REP008"],
        )
        assert findings == []


class TestREP009EventReachability:
    def test_phantom_and_dead_events_are_flagged(self, lint_project):
        findings = lint_project(
            {
                "repro/obs/events.py": EVENTS_MODULE,
                "repro/client/emitter.py": EMITTER_MODULE,
                "repro/metrics/consumer.py": CONSUMER_MODULE,
            },
            select=["REP009"],
        )
        messages = sorted(f.message for f in findings)
        assert len(findings) == 2
        assert "DeadEvent" in messages[0] and "dead event" in messages[0]
        assert "PhantomEvent" in messages[1]
        assert "phantom" in messages[1]
        # Findings anchor on the declaration in events.py.
        assert all(f.path == "repro/obs/events.py" for f in findings)

    def test_fully_wired_taxonomy_is_clean(self, lint_project):
        findings = lint_project(
            {
                "repro/obs/events.py": EVENTS_MODULE.replace(
                    "PhantomEvent", "GoodEvent2"
                ).replace("DeadEvent", "GoodEvent3"),
                "repro/client/emitter.py": """\
                from repro.obs.events import GoodEvent, GoodEvent2, GoodEvent3


                def tick(bus):
                    bus.emit(GoodEvent(0.0, 1))
                    bus.emit(GoodEvent2(0.0, 1))
                    bus.emit(GoodEvent3(0.0, 1))
                """,
                "repro/metrics/consumer.py": """\
                from repro.obs.events import GoodEvent, GoodEvent2, GoodEvent3


                def install(bus, sink):
                    for cls in (GoodEvent, GoodEvent2, GoodEvent3):
                        bus.subscribe(cls, sink)
                """,
            },
            select=["REP009"],
        )
        assert findings == []

    def test_wants_guard_is_not_consumption(self, lint_project):
        # An event only referenced via bus.wants() at its own emit site
        # has no consumer: still dead.
        findings = lint_project(
            {
                "repro/obs/events.py": EVENTS_MODULE.replace(
                    "PhantomEvent", "GoodEventB"
                ),
                "repro/client/emitter.py": EMITTER_MODULE.replace(
                    "GoodEvent)", "GoodEvent, GoodEventB)"
                ).replace(
                    "bus.emit(GoodEvent(0.0, 1))",
                    "bus.emit(GoodEvent(0.0, 1)); "
                    "bus.emit(GoodEventB(0.0, 1))",
                ),
                "repro/metrics/consumer.py": CONSUMER_MODULE.replace(
                    "PhantomEvent", "GoodEventB"
                ),
            },
            select=["REP009"],
        )
        assert len(findings) == 1
        assert "DeadEvent" in findings[0].message

    def test_suppression_comment_applies(self, lint_project):
        flagged = EVENTS_MODULE.replace(
            "class PhantomEvent(SimEvent):",
            "class PhantomEvent(SimEvent):"
            "  # repro: noqa REP009 -- declared for forward compat",
        ).replace(
            "class DeadEvent(SimEvent):",
            "class DeadEvent(SimEvent):"
            "  # repro: noqa REP009 -- audit-only",
        )
        findings = lint_project(
            {
                "repro/obs/events.py": flagged,
                "repro/client/emitter.py": EMITTER_MODULE,
                "repro/metrics/consumer.py": CONSUMER_MODULE,
            },
            select=["REP009"],
        )
        assert findings == []

    def test_without_events_module_the_rule_is_silent(self, lint_project):
        findings = lint_project(
            {"repro/client/emitter.py": EMITTER_MODULE},
            select=["REP009"],
        )
        assert findings == []


CONFIG_MODULE = """\
import dataclasses


@dataclasses.dataclass
class SimulationConfig:
    used_knob: int = 1
    validated_only_knob: int = 2
    property_backed_knob: float = 0.0

    def validate(self):
        if self.used_knob < 0 or self.validated_only_knob < 0:
            raise ValueError("bad")

    @property
    def derived(self):
        return self.property_backed_knob * 2.0
"""

RUNNER_MODULE = """\
def build(config):
    return config.used_knob + config.derived
"""


class TestREP010UnreadConfigKnob:
    def test_knob_read_only_by_validate_is_flagged(self, lint_project):
        findings = lint_project(
            {
                "repro/experiments/config.py": CONFIG_MODULE,
                "repro/experiments/runner.py": RUNNER_MODULE,
            },
            select=["REP010"],
        )
        assert len(findings) == 1
        assert "validated_only_knob" in findings[0].message
        assert findings[0].path == "repro/experiments/config.py"

    def test_property_backed_knob_counts_as_read(self, lint_project):
        findings = lint_project(
            {
                "repro/experiments/config.py": CONFIG_MODULE,
                "repro/experiments/runner.py": RUNNER_MODULE,
            },
            select=["REP010"],
        )
        assert not any(
            "property_backed_knob" in f.message for f in findings
        )

    def test_without_config_module_the_rule_is_silent(self, lint_project):
        findings = lint_project(
            {"repro/experiments/runner.py": RUNNER_MODULE},
            select=["REP010"],
        )
        assert findings == []

    def test_all_knobs_read_is_clean(self, lint_project):
        findings = lint_project(
            {
                "repro/experiments/config.py": CONFIG_MODULE,
                "repro/experiments/runner.py": RUNNER_MODULE.replace(
                    "config.used_knob",
                    "config.used_knob + config.validated_only_knob",
                ),
            },
            select=["REP010"],
        )
        assert findings == []
