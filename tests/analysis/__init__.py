"""Tests for the determinism analyzer (lint engine, rules, auditor)."""
