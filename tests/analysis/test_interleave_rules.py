"""REP016–REP021 (+REP024) fixtures and CFG-walker edge cases.

Every bad fixture must trip *exactly* its own rule id under a full
lint run (all tiers, no select) — that pins down cross-rule
contamination, which is easy to introduce when several rules read the
same CFG.  The good twin of each fixture shows the sanctioned pattern
and must stay silent.
"""


def ids(findings):
    return sorted({f.rule_id for f in findings})


# ----------------------------------------------------------------------
# REP016 — read-modify-write spanning a yield
# ----------------------------------------------------------------------
RMW_BAD = """\
class Counter:
    def run(self):
        total = self.bytes_sent
        yield self.env.timeout(1.0)
        self.bytes_sent = total + 1
"""

RMW_GOOD = """\
class Counter:
    def run(self):
        yield self.env.timeout(1.0)
        total = self.bytes_sent
        self.bytes_sent = total + 1
"""


class TestRep016:
    def test_stale_write_back_is_flagged(self, lint):
        findings = lint("repro/sim/mod.py", RMW_BAD)
        assert ids(findings) == ["REP016"]
        (finding,) = findings
        assert finding.line == 5
        assert "self.bytes_sent" in finding.message

    def test_reread_after_yield_is_silent(self, lint):
        assert lint("repro/sim/mod.py", RMW_GOOD) == []

    def test_augmented_update_in_place_is_silent(self, lint):
        source = """\
        class Counter:
            def run(self):
                yield self.env.timeout(1.0)
                self.bytes_sent += 1
        """
        assert lint("repro/sim/mod.py", source) == []


# ----------------------------------------------------------------------
# REP017 — volatile snapshot used after a yield
# ----------------------------------------------------------------------
SNAPSHOT_BAD = """\
class Client:
    def run(self):
        up = self.network.is_connected(self.client_id)
        yield self.env.timeout(1.0)
        if up:
            self.serve()
"""

SNAPSHOT_GOOD = """\
class Client:
    def run(self):
        yield self.env.timeout(1.0)
        up = self.network.is_connected(self.client_id)
        if up:
            self.serve()
"""


class TestRep017:
    def test_stale_probe_is_flagged(self, lint):
        findings = lint("repro/client/mod.py", SNAPSHOT_BAD)
        assert ids(findings) == ["REP017"]
        (finding,) = findings
        assert finding.line == 3
        assert "is_connected" in finding.message

    def test_probe_after_yield_is_silent(self, lint):
        assert lint("repro/client/mod.py", SNAPSHOT_GOOD) == []

    def test_snapshot_used_before_yield_is_silent(self, lint):
        source = """\
        class Client:
            def run(self):
                up = self.network.is_connected(self.client_id)
                if up:
                    self.serve()
                yield self.env.timeout(1.0)
        """
        assert lint("repro/client/mod.py", source) == []

    def test_deadline_arithmetic_on_env_now_is_not_volatile(self, lint):
        # Pinning a deadline before waiting is the idiom, not a bug.
        source = """\
        class Client:
            def run(self):
                deadline = self.env.now + 5.0
                yield self.env.timeout(1.0)
                if self.env.now < deadline:
                    self.serve()
        """
        assert lint("repro/client/mod.py", source) == []


# ----------------------------------------------------------------------
# REP018 — any_of race winner never inspected
# ----------------------------------------------------------------------
RACE_BAD = """\
class Client:
    def run(self):
        first = yield self.env.any_of(
            [self.env.timeout(1.0), self.env.timeout(2.0)]
        )
        self.note(first)
"""

RACE_GOOD = """\
class Client:
    def run(self):
        probe = self.env.timeout(1.0)
        fired = yield self.env.any_of([probe, self.env.timeout(2.0)])
        if probe in fired:
            self.serve()
"""


class TestRep018:
    def test_unchecked_race_result_is_flagged(self, lint):
        findings = lint("repro/client/mod.py", RACE_BAD)
        assert ids(findings) == ["REP018"]
        assert "never checked" in findings[0].message

    def test_membership_test_is_silent(self, lint):
        assert lint("repro/client/mod.py", RACE_GOOD) == []

    def test_discarded_race_result_is_flagged(self, lint):
        source = """\
        class Client:
            def run(self):
                yield self.env.any_of(
                    [self.env.timeout(1.0), self.env.timeout(2.0)]
                )
                self.serve()
        """
        findings = lint("repro/client/mod.py", source)
        assert ids(findings) == ["REP018"]
        assert "discarded" in findings[0].message

    def test_plain_yield_of_single_event_is_silent(self, lint):
        source = """\
        class Client:
            def run(self):
                yield self.env.timeout(1.0)
                self.serve()
        """
        assert lint("repro/client/mod.py", source) == []


# ----------------------------------------------------------------------
# REP019 — facility acquire not released on every path
# ----------------------------------------------------------------------
LEAK_BAD = """\
class Sender:
    def run(self):
        req = self.facility.request()
        yield req
        yield self.env.timeout(1.0)
        if self.flag:
            return
        self.facility.release(req)
"""

LEAK_GOOD = """\
class Sender:
    def run(self):
        req = self.facility.request()
        try:
            yield req
            yield self.env.timeout(1.0)
        finally:
            self.facility.release(req)
"""


class TestRep019:
    def test_leaky_manual_request_is_flagged(self, lint):
        findings = lint("repro/net/mod.py", LEAK_BAD)
        assert ids(findings) == ["REP019"]
        (finding,) = findings
        assert finding.line == 3
        assert "req" in finding.message

    def test_release_in_finally_is_silent(self, lint):
        assert lint("repro/net/mod.py", LEAK_GOOD) == []

    def test_raced_get_without_cancel_is_flagged(self, lint):
        source = """\
        class Waiter:
            def run(self):
                item = self.box.get()
                fired = yield self.env.any_of(
                    [item, self.env.timeout(5.0)]
                )
                if item in fired:
                    self.serve()
        """
        findings = lint("repro/oodb/mod.py", source)
        assert ids(findings) == ["REP019"]
        assert "cancel" in findings[0].message

    def test_raced_get_with_cancel_is_silent(self, lint):
        source = """\
        class Waiter:
            def run(self):
                item = self.box.get()
                fired = yield self.env.any_of(
                    [item, self.env.timeout(5.0)]
                )
                if item in fired:
                    self.serve()
                else:
                    self.box.cancel(item)
        """
        assert lint("repro/oodb/mod.py", source) == []


# ----------------------------------------------------------------------
# REP020 — unprotected yield while holding a grant
# ----------------------------------------------------------------------
HOLD_BAD = """\
class Channel:
    def run(self):
        with self.facility.request() as grant:
            yield grant
            yield self.env.timeout(2.0)
            self.finish()
"""

HOLD_GOOD = """\
class Channel:
    def run(self):
        with self.facility.request() as grant:
            yield grant
            try:
                yield self.env.timeout(2.0)
            except BaseException:
                self.abort()
                raise
            self.finish()
"""


class TestRep020:
    def test_unprotected_hold_is_flagged(self, lint):
        findings = lint("repro/net/mod.py", HOLD_BAD)
        assert ids(findings) == ["REP020"]
        (finding,) = findings
        assert finding.line == 5
        assert "Interrupt protection" in finding.message

    def test_except_baseexception_is_silent(self, lint):
        assert lint("repro/net/mod.py", HOLD_GOOD) == []

    def test_try_finally_is_silent(self, lint):
        source = """\
        class Channel:
            def run(self):
                with self.facility.request() as grant:
                    yield grant
                    try:
                        yield self.env.timeout(2.0)
                    finally:
                        self.finish()
        """
        assert lint("repro/net/mod.py", source) == []

    def test_grant_yield_itself_is_exempt(self, lint):
        # Waiting *for* the grant is not holding it.
        source = """\
        class Channel:
            def run(self):
                with self.facility.request() as grant:
                    yield grant
                    self.finish()
        """
        assert lint("repro/net/mod.py", source) == []


# ----------------------------------------------------------------------
# REP021 — early-exit branch skips the sibling path's emit
# ----------------------------------------------------------------------
EMIT_BAD = """\
class Client:
    def run(self):
        ok = yield self.env.timeout(1.0)
        if not ok:
            return
        self.bus.emit(self.make_done())
"""

EMIT_GOOD = """\
class Client:
    def run(self):
        ok = yield self.env.timeout(1.0)
        if not ok:
            self.bus.emit(self.make_failed())
            return
        self.bus.emit(self.make_done())
"""


class TestRep021:
    def test_silent_early_return_is_flagged(self, lint):
        findings = lint("repro/client/mod.py", EMIT_BAD)
        assert ids(findings) == ["REP021"]
        (finding,) = findings
        assert finding.line == 5

    def test_branch_with_matching_emit_is_silent(self, lint):
        assert lint("repro/client/mod.py", EMIT_GOOD) == []

    def test_raise_branch_is_exempt(self, lint):
        source = """\
        class Client:
            def run(self):
                ok = yield self.env.timeout(1.0)
                if not ok:
                    raise RuntimeError("degraded")
                self.bus.emit(self.make_done())
        """
        assert lint("repro/client/mod.py", source) == []

    def test_function_without_emit_is_exempt(self, lint):
        source = """\
        class Client:
            def run(self):
                ok = yield self.env.timeout(1.0)
                if not ok:
                    return
                self.serve()
        """
        assert lint("repro/client/mod.py", source) == []


# ----------------------------------------------------------------------
# Edge cases the CFG walker must survive
# ----------------------------------------------------------------------
class TestWalkerEdgeCases:
    def test_nested_generator_is_analyzed_separately(self, lint):
        # The inner generator has the RMW bug; the outer function is
        # not even a generator.
        source = """\
        class Outer:
            def build(self):
                def worker(self):
                    total = self.bytes_sent
                    yield self.env.timeout(1.0)
                    self.bytes_sent = total + 1
                return worker
        """
        findings = lint("repro/sim/mod.py", source)
        assert ids(findings) == ["REP016"]

    def test_decorated_process_function_is_analyzed(self, lint):
        source = """\
        import functools


        class Counter:
            @functools.wraps(print)
            def run(self):
                total = self.bytes_sent
                yield self.env.timeout(1.0)
                self.bytes_sent = total + 1
        """
        findings = lint("repro/sim/mod.py", source)
        assert ids(findings) == ["REP016"]

    def test_lambda_yields_do_not_confuse_the_walker(self, lint):
        source = """\
        class Counter:
            def run(self):
                pick = lambda items: sorted(items)
                yield self.env.timeout(1.0)
                self.store(pick)
        """
        assert lint("repro/sim/mod.py", source) == []

    def test_async_def_is_reported_not_crashed(self, lint):
        source = """\
        class Client:
            async def run(self):
                return self.serve()
        """
        findings = lint("repro/client/mod.py", source)
        assert ids(findings) == ["REP024"]
        assert "async def" in findings[0].message

    def test_unparseable_file_surfaces_rep000(self, lint):
        findings = lint("repro/sim/mod.py", "def broken(:\n")
        assert ids(findings) == ["REP000"]

    def test_while_true_loop_with_interrupt_exit(self, lint):
        # A forever-loop process: its only exits are break and the
        # interrupt edge at the yield; must not hang or false-positive.
        source = """\
        class Pump:
            def run(self):
                while True:
                    yield self.env.timeout(1.0)
                    if self.stopped:
                        break
                self.finish()
        """
        assert lint("repro/sim/mod.py", source) == []

    def test_out_of_scope_package_is_ignored(self, lint):
        # experiments/ is not a process package; the RMW pattern there
        # is plain single-threaded code.
        findings = lint("repro/experiments/mod.py", RMW_BAD)
        assert findings == []

    def test_interleave_false_disables_the_tier(self, lint):
        assert lint("repro/sim/mod.py", RMW_BAD, interleave=False) == []
