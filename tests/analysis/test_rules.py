"""One good and at least one bad snippet per REP rule."""


def ids(findings):
    return [f.rule_id for f in findings]


class TestREP001WallClock:
    def test_time_time_is_flagged(self, lint):
        findings = lint(
            "repro/sim/mod.py", "import time\nstart = time.time()\n"
        )
        assert ids(findings) == ["REP001"]
        assert findings[0].line == 2

    def test_monotonic_and_datetime_now_are_flagged(self, lint):
        findings = lint(
            "repro/net/mod.py",
            """\
            import time
            import datetime

            a = time.monotonic()
            b = datetime.datetime.now()
            """,
        )
        assert ids(findings) == ["REP001", "REP001"]

    def test_profiler_module_is_exempt(self, lint):
        findings = lint(
            "repro/obs/profiler.py", "import time\nt = time.perf_counter()\n"
        )
        assert findings == []

    def test_env_now_is_fine(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "def f(env):\n    return env.now + 5.0\n",
        )
        assert findings == []


class TestREP002Randomness:
    def test_import_random_is_flagged(self, lint):
        assert ids(lint("repro/core/mod.py", "import random\n")) == [
            "REP002"
        ]

    def test_from_random_import_is_flagged(self, lint):
        findings = lint(
            "repro/core/mod.py", "from random import shuffle\n"
        )
        assert ids(findings) == ["REP002"]

    def test_numpy_random_attribute_is_flagged(self, lint):
        findings = lint(
            "repro/core/mod.py",
            "import numpy as np\nx = np.random.rand()\n",
        )
        assert ids(findings) == ["REP002"]

    def test_rand_module_itself_is_exempt(self, lint):
        assert lint("repro/sim/rand.py", "import random\n") == []

    def test_seeded_stream_import_is_fine(self, lint):
        findings = lint(
            "repro/core/mod.py",
            "from repro.sim.rand import RandomStream\n",
        )
        assert findings == []


class TestREP003UnorderedIteration:
    def test_for_over_set_literal_is_flagged(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "for x in {1, 2, 3}:\n    print(x)\n",
        )
        assert ids(findings) == ["REP003"]

    def test_for_over_dict_items_is_flagged(self, lint):
        findings = lint(
            "repro/core/mod.py",
            "def f(d):\n    for k, v in d.items():\n        print(k, v)\n",
        )
        assert ids(findings) == ["REP003"]

    def test_listcomp_over_dict_keys_is_flagged(self, lint):
        findings = lint(
            "repro/net/mod.py",
            "def f(d):\n    return [k for k in d.keys()]\n",
        )
        assert ids(findings) == ["REP003"]

    def test_list_call_on_dict_keys_is_flagged(self, lint):
        # A plain name is not flagged (the rule only fires on provably
        # unordered expressions), but materialising a dict view is.
        findings = lint(
            "repro/client/mod.py",
            "def f(d):\n    return list(d.keys())\n",
        )
        assert ids(findings) == ["REP003"]

    def test_sorted_wrap_is_fine(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "def f(d):\n    for k in sorted(d.items()):\n        print(k)\n",
        )
        assert findings == []

    def test_reducer_context_is_fine(self, lint):
        # sum/min/max/... are order-insensitive, so feeding them an
        # unordered comprehension cannot leak hash order into the run.
        findings = lint(
            "repro/core/mod.py",
            "def f(d):\n    return sum(v for v in d.values())\n",
        )
        assert findings == []

    def test_set_comprehension_result_is_fine(self, lint):
        findings = lint(
            "repro/core/mod.py",
            "def f(d):\n    return {k for k in d.keys()}\n",
        )
        assert findings == []

    def test_out_of_scope_package_is_exempt(self, lint):
        # Only the deterministic kernel packages are in scope; metrics
        # post-processing may iterate however it likes.
        findings = lint(
            "repro/metrics/mod.py",
            "def f(d):\n    for k, v in d.items():\n        print(k, v)\n",
        )
        assert findings == []


class TestREP004FloatTimeEquality:
    def test_eq_against_env_now_is_flagged(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "def f(env, deadline):\n    return env.now == deadline\n",
        )
        assert ids(findings) == ["REP004"]

    def test_neq_against_deadline_name_is_flagged(self, lint):
        findings = lint(
            "repro/net/mod.py",
            "def f(deadline, t):\n    return t != deadline\n",
        )
        assert ids(findings) == ["REP004"]

    def test_ordering_comparison_is_fine(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "def f(env, deadline):\n    return env.now >= deadline\n",
        )
        assert findings == []

    def test_equality_on_unrelated_values_is_fine(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "def f(a, b):\n    return a == b\n",
        )
        assert findings == []


class TestREP005FrozenObsEvents:
    def test_unfrozen_event_class_is_flagged(self, lint):
        findings = lint(
            "repro/obs/mod.py",
            """\
            import dataclasses

            from repro.obs.events import SimEvent


            @dataclasses.dataclass
            class Mutable(SimEvent):
                x: int
            """,
        )
        assert ids(findings) == ["REP005"]

    def test_undecorated_event_class_is_flagged(self, lint):
        findings = lint(
            "repro/obs/mod.py",
            """\
            from repro.obs.events import SimEvent


            class Plain(SimEvent):
                pass
            """,
        )
        assert ids(findings) == ["REP005"]

    def test_frozen_event_class_is_fine(self, lint):
        findings = lint(
            "repro/obs/mod.py",
            """\
            import dataclasses

            from repro.obs.events import SimEvent


            @dataclasses.dataclass(frozen=True)
            class Good(SimEvent):
                x: int
            """,
        )
        assert findings == []

    def test_non_event_class_is_ignored(self, lint):
        findings = lint(
            "repro/obs/mod.py",
            "class Helper:\n    value = 1\n",
        )
        assert findings == []


class TestREP006YieldEventsOnly:
    def test_bare_yield_is_flagged(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "def proc(env):\n    yield\n",
        )
        assert ids(findings) == ["REP006"]

    def test_yield_literal_is_flagged(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "def proc(env):\n    yield 5\n",
        )
        assert ids(findings) == ["REP006"]

    def test_yield_timeout_is_fine(self, lint):
        findings = lint(
            "repro/sim/mod.py",
            "def proc(env):\n    yield env.timeout(1.0)\n",
        )
        assert findings == []


class TestREP007MutableDefaults:
    def test_list_default_is_flagged(self, lint):
        findings = lint(
            "repro/core/mod.py",
            "def f(out=[]):\n    return out\n",
        )
        assert ids(findings) == ["REP007"]

    def test_dict_keyword_only_default_is_flagged(self, lint):
        findings = lint(
            "repro/core/mod.py",
            "def f(*, cache={}):\n    return cache\n",
        )
        assert ids(findings) == ["REP007"]

    def test_constructor_call_default_is_flagged(self, lint):
        findings = lint(
            "repro/core/mod.py",
            "def f(out=list()):\n    return out\n",
        )
        assert ids(findings) == ["REP007"]

    def test_none_and_tuple_defaults_are_fine(self, lint):
        findings = lint(
            "repro/core/mod.py",
            "def f(a=None, b=(), c=0):\n    return a, b, c\n",
        )
        assert findings == []
