"""Unit tests for schema definitions."""

import pytest

from repro.errors import SchemaError
from repro.oodb.schema import (
    AttributeDef,
    ClassDef,
    DEFAULT_ATTRIBUTE_SIZE,
    OBJECT_OVERHEAD_BYTES,
    Schema,
    default_root_schema,
)


def test_attribute_requires_positive_size():
    with pytest.raises(SchemaError):
        AttributeDef("a", size_bytes=0)


def test_relationship_requires_target():
    with pytest.raises(SchemaError):
        AttributeDef("r", is_relationship=True)


def test_primitive_rejects_target():
    with pytest.raises(SchemaError):
        AttributeDef("a", target_class="Root")


def test_class_rejects_duplicate_attributes():
    with pytest.raises(SchemaError):
        ClassDef("X", [AttributeDef("a"), AttributeDef("a")])


def test_class_rejects_empty_name():
    with pytest.raises(SchemaError):
        ClassDef("", [AttributeDef("a")])


def test_class_attribute_lookup():
    cls = ClassDef("X", [AttributeDef("a", size_bytes=10)])
    assert cls.attribute("a").size_bytes == 10
    with pytest.raises(SchemaError):
        cls.attribute("missing")


def test_object_size_includes_overhead():
    cls = ClassDef("X", [AttributeDef("a", size_bytes=100)])
    assert cls.object_size_bytes == OBJECT_OVERHEAD_BYTES + 100


def test_schema_rejects_duplicate_classes():
    cls = ClassDef("X", [AttributeDef("a")])
    with pytest.raises(SchemaError):
        Schema([cls, ClassDef("X", [AttributeDef("b")])])


def test_schema_validates_relationship_targets():
    bad = ClassDef(
        "X",
        [AttributeDef("r", is_relationship=True, target_class="Missing")],
    )
    with pytest.raises(SchemaError):
        Schema([bad])


def test_schema_class_lookup():
    schema = default_root_schema()
    assert schema.class_def("Root").name == "Root"
    with pytest.raises(SchemaError):
        schema.class_def("Nope")


class TestDefaultRootSchema:
    def test_attribute_counts(self):
        root = default_root_schema().class_def("Root")
        assert len(root.primitive_names) == 9
        assert len(root.relationship_names) == 3
        assert len(root.attribute_names) == 12

    def test_object_is_exactly_1024_bytes(self):
        """The paper: each object has a size of 1024 bytes."""
        root = default_root_schema().class_def("Root")
        assert root.object_size_bytes == 1024

    def test_relationships_point_at_root(self):
        root = default_root_schema().class_def("Root")
        for name in root.relationship_names:
            assert root.attribute(name).target_class == "Root"

    def test_custom_sizes(self):
        schema = default_root_schema(
            primitive_count=4, relationship_count=1, attribute_size=10
        )
        root = schema.class_def("Root")
        assert len(root.attribute_names) == 5
        assert root.object_size_bytes == OBJECT_OVERHEAD_BYTES + 50

    def test_default_attribute_size(self):
        root = default_root_schema().class_def("Root")
        assert root.attribute("a0").size_bytes == DEFAULT_ATTRIBUTE_SIZE
