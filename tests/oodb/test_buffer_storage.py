"""Unit and property tests for buffer pools and the storage timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CacheError
from repro.oodb.buffer import BufferPool
from repro.oodb.storage import (
    DISK_BANDWIDTH_BPS,
    MEMORY_BANDWIDTH_BPS,
    Medium,
    StorageModel,
)


class TestBufferPool:
    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            BufferPool(-1)

    def test_zero_capacity_never_hits(self):
        pool = BufferPool(0)
        assert not pool.access("a")
        assert not pool.access("a")
        assert pool.hit_ratio == 0.0

    def test_miss_then_hit(self):
        pool = BufferPool(2)
        assert not pool.access("a")
        assert pool.access("a")
        assert pool.hits == 1
        assert pool.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.access("a")
        pool.access("b")
        pool.access("a")  # refresh a; b is now LRU
        pool.access("c")  # evicts b
        assert "b" not in pool
        assert "a" in pool
        assert "c" in pool

    def test_capacity_never_exceeded(self):
        pool = BufferPool(3)
        for i in range(10):
            pool.access(i)
            assert len(pool) <= 3

    def test_evict_and_peek(self):
        pool = BufferPool(2)
        pool.access("a")
        assert pool.peek("a")
        assert pool.evict("a")
        assert not pool.peek("a")
        assert not pool.evict("a")

    def test_keys_in_lru_order(self):
        pool = BufferPool(3)
        for key in ("a", "b", "c"):
            pool.access(key)
        pool.access("a")
        assert pool.keys() == ["b", "c", "a"]

    @settings(max_examples=50, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        keys=st.lists(st.integers(min_value=0, max_value=20), max_size=200),
    )
    def test_matches_reference_lru(self, capacity, keys):
        """The pool must agree with a straightforward reference LRU."""
        pool = BufferPool(capacity)
        reference: list = []
        for key in keys:
            hit = pool.access(key)
            assert hit == (key in reference)
            if key in reference:
                reference.remove(key)
            reference.append(key)
            if len(reference) > capacity:
                reference.pop(0)
            assert set(pool.keys()) == set(reference)


class TestMedium:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            Medium(0)

    def test_access_time(self):
        # 1024 bytes at 40 Mbps = 8192 bits / 40e6 bps.
        medium = Medium(DISK_BANDWIDTH_BPS)
        assert medium.access_time(1024) == pytest.approx(8192 / 40e6)


class TestStorageModel:
    def test_miss_costs_disk_plus_memory(self):
        model = StorageModel(buffer_capacity=2)
        miss_time = model.access("x", 1024)
        hit_time = model.access("x", 1024)
        expected_miss = Medium(DISK_BANDWIDTH_BPS).access_time(
            1024
        ) + Medium(MEMORY_BANDWIDTH_BPS).access_time(1024)
        assert miss_time == pytest.approx(expected_miss)
        assert hit_time == pytest.approx(
            Medium(MEMORY_BANDWIDTH_BPS).access_time(1024)
        )
        assert miss_time > hit_time

    def test_write_goes_to_disk(self):
        model = StorageModel(buffer_capacity=2)
        assert model.write("x", 1024) == pytest.approx(
            Medium(DISK_BANDWIDTH_BPS).access_time(1024)
        )

    def test_buffer_hit_ratio_exposed(self):
        model = StorageModel(buffer_capacity=1)
        model.access("x", 10)
        model.access("x", 10)
        assert model.buffer_hit_ratio == pytest.approx(0.5)

    def test_eviction_through_buffer(self):
        model = StorageModel(buffer_capacity=1)
        model.access("x", 10)
        model.access("y", 10)  # evicts x
        slow = model.access("x", 10)  # miss again
        assert slow > Medium(MEMORY_BANDWIDTH_BPS).access_time(10)
