"""Unit tests for DBObject versioning and the database builder."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.oodb.database import Database, build_default_database
from repro.oodb.objects import DBObject, OID
from repro.oodb.schema import AttributeDef, ClassDef, default_root_schema
from repro.sim.rand import RandomStream


def make_object(number=0):
    cls = ClassDef(
        "X",
        [
            AttributeDef("a"),
            AttributeDef("r", is_relationship=True, target_class="X"),
        ],
    )
    return DBObject(OID("X", number), cls, {"a": 5, "r": 1})


class TestDBObject:
    def test_read_write_roundtrip(self):
        obj = make_object()
        assert obj.read("a") == 5
        obj.write("a", 9, now=3.0)
        assert obj.read("a") == 9

    def test_write_bumps_both_version_levels(self):
        obj = make_object()
        assert obj.version_of("a") == 0
        assert obj.object_version == 0
        obj.write("a", 1, now=1.0)
        assert obj.version_of("a") == 1
        assert obj.object_version == 1
        obj.write("r", 0, now=2.0)
        assert obj.version_of("a") == 1  # untouched attribute
        assert obj.version_of("r") == 1
        assert obj.object_version == 2

    def test_write_records_time(self):
        obj = make_object()
        obj.write("a", 1, now=42.0)
        assert obj.attribute_state("a").last_write_time == 42.0
        assert obj.last_write_time == 42.0

    def test_unknown_attribute_rejected(self):
        obj = make_object()
        with pytest.raises(SchemaError):
            obj.read("zzz")

    def test_values_must_match_schema(self):
        cls = ClassDef("X", [AttributeDef("a")])
        with pytest.raises(SchemaError):
            DBObject(OID("X", 0), cls, {})
        with pytest.raises(SchemaError):
            DBObject(OID("X", 0), cls, {"a": 1, "b": 2})

    def test_oid_class_must_match(self):
        cls = ClassDef("X", [AttributeDef("a")])
        with pytest.raises(SchemaError):
            DBObject(OID("Y", 0), cls, {"a": 1})

    def test_related_oid_resolution(self):
        obj = make_object()
        assert obj.related_oid("r") == OID("X", 1)

    def test_related_oid_rejects_primitive(self):
        obj = make_object()
        with pytest.raises(SchemaError):
            obj.related_oid("a")


class TestDatabase:
    def test_add_and_get(self):
        schema = default_root_schema()
        database = build_default_database(10, schema=schema)
        oid = OID("Root", 3)
        assert oid in database
        assert database.get(oid).oid == oid

    def test_get_missing_raises(self):
        database = build_default_database(5)
        with pytest.raises(QueryError):
            database.get(OID("Root", 99))

    def test_duplicate_add_rejected(self):
        schema = default_root_schema()
        database = Database(schema)
        obj = build_default_database(3, schema=schema).get(OID("Root", 0))
        database.add(obj)
        with pytest.raises(SchemaError):
            database.add(obj)

    def test_oids_sorted_and_filtered(self):
        database = build_default_database(5)
        oids = database.oids("Root")
        assert oids == sorted(oids)
        assert len(oids) == 5
        assert database.oids("Missing") == []


class TestDefaultDatabaseBuilder:
    def test_paper_population(self):
        database = build_default_database()
        assert len(database) == 2000
        assert database.total_size_bytes == 2000 * 1024

    def test_relationships_never_self_reference(self):
        database = build_default_database(50)
        for obj in database.objects():
            for name in obj.class_def.relationship_names:
                target = obj.related_oid(name)
                assert target != obj.oid
                assert target in database

    def test_deterministic_given_seed(self):
        a = build_default_database(20, rng=RandomStream(5, "db"))
        b = build_default_database(20, rng=RandomStream(5, "db"))
        for oid in a.oids():
            for name in a.get(oid).class_def.attribute_names:
                assert a.get(oid).read(name) == b.get(oid).read(name)

    def test_requires_two_objects(self):
        with pytest.raises(SchemaError):
            build_default_database(1)
