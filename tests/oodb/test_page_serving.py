"""Unit tests for the PC (page caching) baseline's server behaviour."""

import pytest

from repro.core.granularity import CachingGranularity
from repro.errors import NetworkError
from repro.net.message import RequestMessage
from repro.net.network import Network
from repro.oodb.database import build_default_database
from repro.oodb.objects import OID
from repro.oodb.server import DatabaseServer
from repro.sim.environment import Environment


@pytest.fixture()
def server():
    env = Environment()
    database = build_default_database(20)
    network = Network(env)
    return DatabaseServer(
        env, database, network, buffer_capacity=10, objects_per_page=4
    )


def page_request(needed, existent=(), held=()):
    return RequestMessage(
        client_id=0,
        query_id=1,
        granularity=CachingGranularity.PAGE,
        needed=needed,
        existent=tuple(existent),
        held=tuple(held),
    )


class TestPageServing:
    def test_whole_page_returned(self, server):
        # Object 5 lives in page 1 = objects 4..7.
        reply, trailer, __ = server.serve(page_request({OID("Root", 5): ()}))
        assert trailer is None
        returned = sorted(item.oid.number for item in reply.items)
        assert returned == [4, 5, 6, 7]
        assert all(item.attribute is None for item in reply.items)

    def test_page_members_clip_at_database_end(self, server):
        # 20 objects, pages of 4: object 18 -> page 4 = objects 16..19.
        reply, __, __ = server.serve(page_request({OID("Root", 18): ()}))
        returned = sorted(item.oid.number for item in reply.items)
        assert returned == [16, 17, 18, 19]

    def test_two_objects_same_page_sent_once(self, server):
        reply, __, __ = server.serve(
            page_request({OID("Root", 4): (), OID("Root", 6): ()})
        )
        returned = sorted(item.oid.number for item in reply.items)
        assert returned == [4, 5, 6, 7]

    def test_held_page_mates_skipped(self, server):
        reply, __, __ = server.serve(
            page_request(
                {OID("Root", 5): ()},
                held=[(OID("Root", 4), None), (OID("Root", 7), None)],
            )
        )
        returned = sorted(item.oid.number for item in reply.items)
        assert returned == [5, 6]

    def test_requested_object_sent_even_if_listed_held(self, server):
        # A needed object is being refreshed; held must not mask it.
        reply, __, __ = server.serve(
            page_request(
                {OID("Root", 5): ()}, held=[(OID("Root", 5), None)]
            )
        )
        assert 5 in [item.oid.number for item in reply.items]

    def test_page_reply_is_bigger_than_object_reply(self, server):
        page_reply, __, __ = server.serve(
            page_request({OID("Root", 5): ()})
        )
        object_reply, __, __ = server.serve(
            RequestMessage(
                client_id=0,
                query_id=2,
                granularity=CachingGranularity.OBJECT,
                needed={OID("Root", 5): ()},
            )
        )
        assert page_reply.size_bytes > 3 * object_reply.size_bytes

    def test_page_size_validation(self):
        env = Environment()
        database = build_default_database(10)
        with pytest.raises(NetworkError):
            DatabaseServer(
                env, database, Network(env), objects_per_page=0
            )


class TestTrailerDropHeuristic:
    def test_trailer_dropped_when_queue_backs_up(self):
        env = Environment()
        database = build_default_database(30)
        network = Network(env)
        server = DatabaseServer(
            env,
            database,
            network,
            trailer_drop_queue_threshold=1,
        )
        received = []
        server.register_client(0, received.append)
        server.start()
        # Teach the prefetcher so HC requests produce trailers.
        for attribute, count in (("a0", 55), ("a1", 35), ("a2", 10)):
            for __ in range(count):
                server.prefetch_tracker.record_access(0, "Root", attribute)
        # Three HC requests in a burst: their replies + trailers queue on
        # the downlink, pushing its queue past the threshold.
        for query_id, number in enumerate((1, 2, 3)):
            server.inbox.put(
                RequestMessage(
                    client_id=0,
                    query_id=query_id,
                    granularity=CachingGranularity.HYBRID,
                    needed={OID("Root", number): ("a0",)},
                )
            )
        env.run(until=60.0)
        assert server.trailers_dropped > 0
        trailers = [r for r in received if r.is_trailer]
        primaries = [r for r in received if not r.is_trailer]
        assert len(primaries) == 3
        assert len(trailers) < 3
