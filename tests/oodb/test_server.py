"""Unit tests for the database server's request handling."""

import math

import pytest

from repro.core.granularity import CachingGranularity
from repro.errors import NetworkError
from repro.net.message import RequestMessage, UpdateValue
from repro.net.network import Network
from repro.oodb.database import build_default_database
from repro.oodb.objects import OID
from repro.oodb.server import DatabaseServer
from repro.sim.environment import Environment


@pytest.fixture()
def server():
    env = Environment()
    database = build_default_database(50)
    network = Network(env)
    return DatabaseServer(env, database, network, buffer_capacity=10)


def make_request(granularity, needed, existent=(), held=(), updates=None,
                 client_id=0):
    return RequestMessage(
        client_id=client_id,
        query_id=1,
        granularity=granularity,
        needed=needed,
        existent=tuple(existent),
        held=tuple(held),
        updates=updates or {},
    )


class TestAttributeServing:
    def test_returns_exactly_requested_attributes(self, server):
        oid = OID("Root", 1)
        request = make_request(
            CachingGranularity.ATTRIBUTE, {oid: ("a0", "a3")}
        )
        reply, trailer, service = server.serve(request)
        assert trailer is None
        assert service > 0
        assert [(i.oid, i.attribute) for i in reply.items] == [
            (oid, "a0"),
            (oid, "a3"),
        ]
        expected = server.database.get(oid).read("a0")
        assert reply.items[0].value == expected

    def test_item_versions_match_database(self, server):
        oid = OID("Root", 2)
        server.database.get(oid).write("a0", 123, now=1.0)
        request = make_request(CachingGranularity.ATTRIBUTE, {oid: ("a0",)})
        reply, __, __ = server.serve(request)
        assert reply.items[0].version == 1

    def test_refresh_time_infinite_without_writes(self, server):
        oid = OID("Root", 3)
        request = make_request(CachingGranularity.ATTRIBUTE, {oid: ("a0",)})
        reply, __, __ = server.serve(request)
        assert math.isinf(reply.items[0].refresh_time)


class TestObjectServing:
    def test_returns_whole_object(self, server):
        oid = OID("Root", 4)
        request = make_request(CachingGranularity.OBJECT, {oid: ()})
        reply, trailer, __ = server.serve(request)
        assert trailer is None
        item = reply.items[0]
        assert item.attribute is None
        assert set(item.value) == set(
            server.database.get(oid).class_def.attribute_names
        )
        assert item.payload_bytes == 12 * 80

    def test_object_version_reported(self, server):
        oid = OID("Root", 5)
        obj = server.database.get(oid)
        obj.write("a0", 1, now=1.0)
        obj.write("a1", 2, now=2.0)
        request = make_request(CachingGranularity.OBJECT, {oid: ()})
        reply, __, __ = server.serve(request)
        assert reply.items[0].version == 2


class TestUpdates:
    def test_update_applied_and_versioned(self, server):
        oid = OID("Root", 6)
        request = make_request(
            CachingGranularity.ATTRIBUTE,
            {oid: ("a0",)},
            updates={oid: (UpdateValue("a0", 777, 80),)},
        )
        reply, __, __ = server.serve(request)
        assert server.database.get(oid).read("a0") == 777
        assert server.updates_applied == 1
        # The reply returns the freshly written value and version.
        assert reply.items[0].value == 777
        assert reply.items[0].version == 1

    def test_write_statistics_feed_refresh_times(self, server):
        oid = OID("Root", 7)
        env = server.env

        def write_at(time, value):
            env._now = time  # unit test: drive the clock directly
            server.serve(
                make_request(
                    CachingGranularity.ATTRIBUTE,
                    {oid: ("a0",)},
                    updates={oid: (UpdateValue("a0", value, 80),)},
                )
            )

        write_at(0.0, 1)
        write_at(100.0, 2)
        write_at(200.0, 3)
        # Two gaps of 100 s each: mean 100, std 0 -> RT = 100 (beta 0).
        rt = server.attribute_estimator.refresh_time((oid, "a0"))
        assert rt == pytest.approx(100.0)


class TestHybridPrefetching:
    def test_no_prefetch_without_statistics(self, server):
        oid = OID("Root", 8)
        request = make_request(CachingGranularity.HYBRID, {oid: ("a0",)})
        reply, trailer, __ = server.serve(request)
        assert trailer is None
        assert [i.attribute for i in reply.items] == ["a0"]

    def test_prefetch_hot_attributes_in_trailer(self, server):
        hot_oid = OID("Root", 9)
        # Teach the tracker: a0 and a1 are clearly above the uniform
        # share of the three observed attributes, a2 clearly below.
        for attribute, count in (("a0", 55), ("a1", 35), ("a2", 10)):
            for __ in range(count):
                server.prefetch_tracker.record_access(0, "Root", attribute)
        request = make_request(CachingGranularity.HYBRID, {hot_oid: ("a0",)})
        reply, trailer, __ = server.serve(request)
        assert [i.attribute for i in reply.items] == ["a0"]
        assert trailer is not None
        assert trailer.is_trailer
        assert [i.attribute for i in trailer.items] == ["a1"]
        assert server.items_prefetched == 1

    def test_held_attributes_not_prefetched(self, server):
        oid = OID("Root", 10)
        for attribute, count in (("a0", 55), ("a1", 35), ("a2", 10)):
            for __ in range(count):
                server.prefetch_tracker.record_access(0, "Root", attribute)
        request = make_request(
            CachingGranularity.HYBRID,
            {oid: ("a0",)},
            held=[(oid, "a1")],
        )
        __, trailer, __ = server.serve(request)
        assert trailer is None

    def test_existent_feeds_statistics_but_held_does_not(self, server):
        oid = OID("Root", 11)
        request = make_request(
            CachingGranularity.HYBRID,
            {oid: ("a0",)},
            existent=[(oid, "a1")],
            held=[(oid, "a2")],
        )
        server.serve(request)
        probabilities = server.prefetch_tracker.access_probabilities(
            0, "Root"
        )
        assert probabilities.get("a1", 0) > 0
        assert probabilities.get("a2", 0) == 0


class TestDelivery:
    def test_duplicate_registration_rejected(self, server):
        server.register_client(1, lambda reply: None)
        with pytest.raises(NetworkError):
            server.register_client(1, lambda reply: None)

    def test_end_to_end_reply_via_downlink(self):
        env = Environment()
        database = build_default_database(20)
        network = Network(env)
        server = DatabaseServer(env, database, network)
        received = []
        server.register_client(0, received.append)
        server.start()
        oid = OID("Root", 1)
        server.inbox.put(
            make_request(CachingGranularity.ATTRIBUTE, {oid: ("a0",)})
        )
        env.run(until=60.0)
        assert len(received) == 1
        assert received[0].items[0].oid == oid
        # The reply spent time on the 19.2 kbps downlink.
        assert network.downlink.bytes_carried == received[0].size_bytes

    def test_unroutable_reply_raises(self):
        env = Environment()
        database = build_default_database(20)
        network = Network(env)
        server = DatabaseServer(env, database, network)
        server.start()
        server.inbox.put(
            make_request(
                CachingGranularity.ATTRIBUTE,
                {OID("Root", 1): ("a0",)},
                client_id=42,
            )
        )
        with pytest.raises(NetworkError):
            env.run(until=60.0)


class TestBufferAccounting:
    def test_repeated_access_warms_buffer(self, server):
        oid = OID("Root", 12)
        request = make_request(CachingGranularity.ATTRIBUTE, {oid: ("a0",)})
        __, __, cold = server.serve(request)
        __, __, warm = server.serve(request)
        assert warm < cold
