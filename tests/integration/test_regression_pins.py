"""Golden-value regression pins.

The simulation is fully deterministic for a given seed, so headline
metrics of a fixed configuration are pinned *exactly*.  These pins catch
unintended behavioural drift anywhere in the stack (kernel scheduling,
random-stream usage, protocol sizes, policy decisions).

If a change to the model is intentional, update the pins — the diff then
documents the behavioural impact of the change.
"""

import pytest

from repro import SimulationConfig, run_simulation


def test_default_hc_configuration_pinned():
    result = run_simulation(SimulationConfig(horizon_hours=2.0))
    assert result.summary.total_queries == 736
    assert result.hit_ratio == pytest.approx(
        0.42774003623188406, abs=1e-12
    )
    assert result.response_time == pytest.approx(
        1.9377924475364128, abs=1e-9
    )
    assert result.error_rate == pytest.approx(
        0.033627717391304345, abs=1e-12
    )


def test_oc_lru_configuration_pinned():
    result = run_simulation(
        SimulationConfig(
            granularity="OC", replacement="lru", horizon_hours=2.0
        )
    )
    assert result.summary.total_queries == 736
    assert result.hit_ratio == pytest.approx(
        0.46324728260869563, abs=1e-12
    )
    assert result.response_time == pytest.approx(
        8.239159990457395, abs=1e-9
    )
    assert result.error_rate == pytest.approx(
        0.07601902173913043, abs=1e-12
    )
