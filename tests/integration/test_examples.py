"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_quickstart():
    result = run_example("quickstart.py", "0.5")
    assert result.returncode == 0, result.stderr
    assert "cache hit ratio" in result.stdout
    assert "without storage caching" in result.stdout


def test_atis_tourist():
    result = run_example("atis_tourist.py")
    assert result.returncode == 0, result.stderr
    assert "Q1: hotels with vacancies" in result.stdout
    assert "no wireless traffic at all" in result.stdout


def test_replacement_shootout():
    result = run_example("replacement_shootout.py", "0.3")
    assert result.returncode == 0, result.stderr
    for pattern in ("SH", "CSH", "cyclic"):
        assert f"=== {pattern} ===" in result.stdout
    assert "ewma-0.5" in result.stdout


def test_disconnection_study():
    result = run_example("disconnection_study.py", "1.0")
    assert result.returncode == 0, result.stderr
    assert "beta" in result.stdout


@pytest.mark.parametrize("hours", ["0.5"])
def test_coherence_comparison(hours):
    result = run_example("coherence_comparison.py", hours)
    assert result.returncode == 0, result.stderr
    assert "invalidation-report" in result.stdout
    assert "IR broadcast period sweep" in result.stdout


def test_adaptation_timeline():
    result = run_example("adaptation_timeline.py", "2.0")
    assert result.returncode == 0, result.stderr
    assert "ewma-0.5" in result.stdout
    assert "|" in result.stdout  # sparklines rendered
