"""End-to-end shape tests: the paper's headline findings in miniature.

Each fixture runs a reduced-horizon simulation (hours, not the paper's
96 h), so assertions are deliberately about *orderings and directions*,
not absolute values.
"""

import pytest

from repro import SimulationConfig, run_simulation

HOURS = 6.0


@pytest.fixture(scope="module")
def granularity_results():
    return {
        g: run_simulation(
            SimulationConfig(granularity=g, horizon_hours=HOURS)
        )
        for g in ("NC", "AC", "OC", "HC")
    }


class TestExperiment1Shapes:
    def test_nc_is_far_worse(self, granularity_results):
        nc = granularity_results["NC"]
        for other in ("AC", "OC", "HC"):
            result = granularity_results[other]
            assert nc.hit_ratio < result.hit_ratio / 3
            assert nc.response_time > 2 * result.response_time

    def test_oc_hits_beat_ac_but_respond_slower(self, granularity_results):
        ac = granularity_results["AC"]
        oc = granularity_results["OC"]
        assert oc.hit_ratio > ac.hit_ratio
        assert oc.response_time > 1.5 * ac.response_time

    def test_hc_combines_the_best_of_both(self, granularity_results):
        ac = granularity_results["AC"]
        oc = granularity_results["OC"]
        hc = granularity_results["HC"]
        # Hit ratio close to OC (well above halfway between AC and OC is
        # too strict at this horizon; demand at least AC's level).
        assert hc.hit_ratio >= ac.hit_ratio - 0.02
        # Response time near AC's, far below OC's.
        assert hc.response_time < (ac.response_time + oc.response_time) / 2

    def test_oc_error_rate_highest(self, granularity_results):
        ac = granularity_results["AC"]
        oc = granularity_results["OC"]
        hc = granularity_results["HC"]
        assert oc.error_rate > ac.error_rate
        assert oc.error_rate > hc.error_rate

    def test_hc_errors_at_most_ac(self, granularity_results):
        assert (
            granularity_results["HC"].error_rate
            <= granularity_results["AC"].error_rate + 0.01
        )


class TestCoherenceShapes:
    @pytest.fixture(scope="class")
    def beta_sweep(self):
        return {
            beta: run_simulation(
                SimulationConfig(beta=beta, horizon_hours=HOURS)
            )
            for beta in (-1.0, 0.0, 1.0)
        }

    def test_hit_ratio_grows_with_beta(self, beta_sweep):
        hits = [beta_sweep[beta].hit_ratio for beta in (-1.0, 0.0, 1.0)]
        assert hits == sorted(hits)

    def test_error_rate_grows_with_beta(self, beta_sweep):
        errors = [beta_sweep[beta].error_rate for beta in (-1.0, 0.0, 1.0)]
        assert errors == sorted(errors)

    def test_errors_grow_with_update_probability(self):
        errors = [
            run_simulation(
                SimulationConfig(
                    update_probability=u, horizon_hours=HOURS
                )
            ).error_rate
            for u in (0.1, 0.5)
        ]
        assert errors[0] < errors[1]


class TestDisconnectionShapes:
    def test_errors_grow_with_disconnection_duration(self):
        """Figures 8a-8c: stale-read errors among disconnected reads
        grow with the disconnection duration."""
        results = [
            run_simulation(
                SimulationConfig(
                    disconnected_clients=5,
                    disconnection_hours=hours,
                    horizon_hours=HOURS,
                )
            ).disconnected_error_rate
            for hours in (0.25, 2.0)
        ]
        assert results[0] < results[1]

    def test_disconnected_clients_see_no_traffic_during_window(self):
        from repro.experiments.runner import Simulation

        sim = Simulation(
            SimulationConfig(
                disconnected_clients=10,
                disconnection_hours=HOURS,
                horizon_hours=HOURS,
            )
        )
        result = sim.run()
        # Every client disconnected for the whole run: all queries are
        # answered locally against a cold cache.
        assert result.hit_ratio == 0.0
        assert sim.network.bytes_upstream == 0
        assert all(
            c.metrics.disconnected_queries == c.metrics.queries
            for c in sim.clients
        )


class TestArrivalShapes:
    def test_bursty_response_exceeds_poisson(self):
        poisson = run_simulation(
            SimulationConfig(
                query_kind="NQ", arrival="poisson", horizon_hours=12.0
            )
        )
        bursty = run_simulation(
            SimulationConfig(
                query_kind="NQ", arrival="bursty", horizon_hours=12.0
            )
        )
        assert bursty.response_time > poisson.response_time

    def test_nq_response_exceeds_aq(self):
        aq = run_simulation(
            SimulationConfig(query_kind="AQ", horizon_hours=HOURS)
        )
        nq = run_simulation(
            SimulationConfig(query_kind="NQ", horizon_hours=HOURS)
        )
        assert nq.response_time > 1.4 * aq.response_time


class TestDeterminism:
    def test_same_seed_same_results(self):
        config = SimulationConfig(horizon_hours=1.0)
        a = run_simulation(config)
        b = run_simulation(config)
        assert a.hit_ratio == b.hit_ratio
        assert a.response_time == b.response_time
        assert a.error_rate == b.error_rate

    def test_different_seed_different_results(self):
        a = run_simulation(SimulationConfig(horizon_hours=1.0, seed=1))
        b = run_simulation(SimulationConfig(horizon_hours=1.0, seed=2))
        assert a.response_time != b.response_time
