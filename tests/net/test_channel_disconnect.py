"""Unit tests for wireless channels and disconnection schedules."""

import pytest

from repro.errors import NetworkError
from repro.net.channel import WirelessChannel
from repro.net.disconnect import DisconnectionSchedule, plan_single_windows
from repro.net.network import Network
from repro.sim.environment import Environment
from repro.sim.process import Interrupt
from repro.sim.rand import RandomStream


class TestWirelessChannel:
    def test_default_bandwidth_is_paper_value(self):
        env = Environment()
        channel = WirelessChannel(env)
        assert channel.bandwidth_bps == pytest.approx(19_200)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(NetworkError):
            WirelessChannel(Environment(), bandwidth_bps=0)

    def test_transmission_time(self):
        env = Environment()
        channel = WirelessChannel(env)
        # 1024 bytes over 19.2 kbps = 8192 / 19200 s.
        assert channel.transmission_time(1024) == pytest.approx(
            8192 / 19_200
        )

    def test_transmit_occupies_channel_fcfs(self):
        env = Environment()
        channel = WirelessChannel(env, bandwidth_bps=8_000)  # 1 kB/s
        done = []

        def sender(env, tag, size):
            yield from channel.transmit(size)
            done.append((tag, env.now))

        env.process(sender(env, "first", 1000))
        env.process(sender(env, "second", 500))
        env.run()
        assert done == [("first", 1.0), ("second", 1.5)]
        assert channel.bytes_carried == 1500
        assert channel.messages_carried == 2

    def test_negative_size_rejected(self):
        env = Environment()
        channel = WirelessChannel(env)

        def sender(env):
            yield from channel.transmit(-1)

        env.process(sender(env))
        with pytest.raises(NetworkError):
            env.run()

    def test_queue_length_visible(self):
        env = Environment()
        channel = WirelessChannel(env, bandwidth_bps=8_000)
        lengths = []

        def sender(env):
            yield from channel.transmit(1000)

        def probe(env):
            yield env.timeout(0.5)
            lengths.append(channel.queue_length)

        env.process(sender(env))
        env.process(sender(env))
        env.process(sender(env))
        env.process(probe(env))
        env.run()
        assert lengths == [2]

    def test_utilization(self):
        env = Environment()
        channel = WirelessChannel(env, bandwidth_bps=8_000)

        def sender(env):
            yield from channel.transmit(1000)  # busy 1s

        env.process(sender(env))
        env.run(until=4.0)
        assert channel.utilization() == pytest.approx(0.25)

    def test_interrupted_transmit_is_accounted(self):
        """An interrupt mid-airtime must not erase the spent airtime.

        The original accounting updated the byte counters only after the
        ``with`` block, so an interrupted transmission vanished from the
        stats entirely even though it held the channel.
        """
        env = Environment()
        channel = WirelessChannel(env, bandwidth_bps=8_000)  # 1 kB/s
        outcomes = []

        def sender(env):
            try:
                yield from channel.transmit(1000)
                outcomes.append("done")
            except Interrupt:
                outcomes.append(("interrupted", env.now))

        def breaker(env, victim):
            yield env.timeout(0.25)
            victim.interrupt()

        victim = env.process(sender(env))
        env.process(breaker(env, victim))
        env.run(until=1.0)
        assert outcomes == [("interrupted", 0.25)]
        # 0.25 s of airtime at 1 kB/s = 250 bytes spent then lost.
        assert channel.messages_aborted == 1
        assert channel.bytes_aborted == pytest.approx(250.0)
        assert channel.messages_carried == 0
        assert channel.bytes_carried == 0
        # The facility was held for those 0.25 s out of 1 s.
        assert channel.utilization() == pytest.approx(0.25)

    def test_interrupt_during_deadline_abort_wait_is_accounted(self):
        """Interrupting the pre-deadline partial-airtime wait must
        account the abort exactly like an interrupt mid-airtime.

        Found by REP020: the deadline-abort wait was the one yield in
        ``transmit`` outside the ``except BaseException`` guard, so an
        interrupt delivered there lost the partial transmission from
        the channel statistics entirely.
        """
        env = Environment()
        channel = WirelessChannel(env, bandwidth_bps=8_000)  # 1 kB/s
        outcomes = []

        def sender(env):
            try:
                # 1000 bytes needs 1 s of air but the link cuts at
                # 0.5 s: transmit enters the deadline-abort wait.
                yield from channel.transmit(1000, deadline=0.5)
                outcomes.append("done")
            except Interrupt:
                outcomes.append(("interrupted", env.now))

        def breaker(env, victim):
            yield env.timeout(0.25)
            victim.interrupt()

        victim = env.process(sender(env))
        env.process(breaker(env, victim))
        env.run(until=1.0)
        assert outcomes == [("interrupted", 0.25)]
        # 0.25 s of the planned 1 s airtime = 250 bytes on the air.
        assert channel.messages_aborted == 1
        assert channel.bytes_aborted == pytest.approx(250.0)
        assert channel.messages_carried == 0

    def test_interrupted_transmit_releases_the_channel(self):
        env = Environment()
        channel = WirelessChannel(env, bandwidth_bps=8_000)
        done = []

        def victim(env):
            try:
                yield from channel.transmit(1000)
            except Interrupt:
                pass

        def follower(env):
            yield env.timeout(0.1)
            yield from channel.transmit(500)
            done.append(env.now)

        def breaker(env, target):
            yield env.timeout(0.5)
            target.interrupt()

        target = env.process(victim(env))
        env.process(follower(env))
        env.process(breaker(env, target))
        env.run()
        # The follower starts right at the interrupt (0.5 s) + 0.5 s air.
        assert done == [pytest.approx(1.0)]
        assert channel.bytes_carried == 500
        assert channel.bytes_aborted == pytest.approx(500.0)


class TestDisconnectionSchedule:
    def test_no_windows_always_connected(self):
        schedule = DisconnectionSchedule()
        assert schedule.is_connected(0, 123.0)

    def test_window_boundaries(self):
        schedule = DisconnectionSchedule({0: [(10.0, 20.0)]})
        assert schedule.is_connected(0, 9.999)
        assert not schedule.is_connected(0, 10.0)
        assert not schedule.is_connected(0, 19.999)
        assert schedule.is_connected(0, 20.0)

    def test_other_clients_unaffected(self):
        schedule = DisconnectionSchedule({0: [(10.0, 20.0)]})
        assert schedule.is_connected(1, 15.0)

    def test_multiple_windows(self):
        schedule = DisconnectionSchedule({0: [(10.0, 20.0), (30.0, 40.0)]})
        assert schedule.is_connected(0, 25.0)
        assert not schedule.is_connected(0, 35.0)

    def test_overlapping_windows_rejected(self):
        schedule = DisconnectionSchedule({0: [(10.0, 20.0)]})
        with pytest.raises(NetworkError):
            schedule.add_window(0, 15.0, 25.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(NetworkError):
            DisconnectionSchedule({0: [(20.0, 10.0)]})

    def test_total_disconnected_time(self):
        schedule = DisconnectionSchedule({0: [(10.0, 20.0), (30.0, 45.0)]})
        assert schedule.total_disconnected_time(0) == pytest.approx(25.0)
        assert schedule.total_disconnected_time(1) == 0.0

    def test_disconnected_clients_listed(self):
        schedule = DisconnectionSchedule({2: [(0.0, 1.0)], 0: [(0.0, 1.0)]})
        assert schedule.disconnected_clients() == [0, 2]

    def test_construction_is_insertion_order_independent(self):
        # Regression for the REP003 fix: the constructor iterates
        # sorted(windows.items()), so the mapping's build order cannot
        # change the schedule.
        forward = DisconnectionSchedule(
            {0: [(0.0, 1.0)], 1: [(2.0, 3.0)], 2: [(4.0, 5.0)]}
        )
        backward = DisconnectionSchedule(
            {2: [(4.0, 5.0)], 1: [(2.0, 3.0)], 0: [(0.0, 1.0)]}
        )
        assert forward.disconnected_clients() == backward.disconnected_clients()
        for client_id in (0, 1, 2):
            assert forward.windows_of(client_id) == backward.windows_of(
                client_id
            )


class TestPlanSingleWindows:
    def test_one_window_per_client_within_horizon(self):
        rng = RandomStream(1, "disc")
        schedule = plan_single_windows([0, 1, 2], 100.0, 1000.0, rng)
        for client in (0, 1, 2):
            windows = schedule.windows_of(client)
            assert len(windows) == 1
            start, end = windows[0]
            assert 0.0 <= start
            assert end <= 1000.0
            assert end - start == pytest.approx(100.0)

    def test_duration_validation(self):
        rng = RandomStream(1, "disc")
        with pytest.raises(NetworkError):
            plan_single_windows([0], 0.0, 100.0, rng)
        with pytest.raises(NetworkError):
            plan_single_windows([0], 200.0, 100.0, rng)

    def test_deterministic(self):
        a = plan_single_windows([0, 1], 50.0, 500.0, RandomStream(9, "d"))
        b = plan_single_windows([0, 1], 50.0, 500.0, RandomStream(9, "d"))
        assert a.windows_of(0) == b.windows_of(0)
        assert a.windows_of(1) == b.windows_of(1)


class TestNetwork:
    def test_connectivity_uses_environment_clock(self):
        env = Environment()
        schedule = DisconnectionSchedule({0: [(5.0, 10.0)]})
        network = Network(env, schedule=schedule)
        assert network.is_connected(0)
        env._now = 7.0
        assert not network.is_connected(0)
        assert network.is_connected(0, now=12.0)

    def test_byte_counters(self):
        env = Environment()
        network = Network(env)

        def up(env):
            yield from network.uplink.transmit(100)

        env.process(up(env))
        env.run()
        assert network.bytes_upstream == 100
        assert network.bytes_downstream == 0
