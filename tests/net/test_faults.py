"""Unit tests for the fault-injection layer and recovery policy."""

import pytest

from repro.errors import NetworkError
from repro.net.channel import ABORTED, DELIVERED, DROPPED, WirelessChannel
from repro.net.disconnect import DisconnectionSchedule
from repro.net.faults import (
    BAD,
    FaultConfig,
    FaultInjector,
    KIND_ABORT,
    KIND_BURST_ENTER,
    KIND_DROP,
    RecoveryPolicy,
    merged_trace,
)
from repro.net.network import Network
from repro.sim.environment import Environment
from repro.sim.rand import RandomStream


class TestFaultConfig:
    def test_all_zero_is_disabled(self):
        assert not FaultConfig().enabled

    def test_loss_rate_enables(self):
        assert FaultConfig(loss_rate=0.1).enabled

    def test_burst_enables(self):
        config = FaultConfig(
            burst_on_probability=0.1, burst_off_probability=0.5
        )
        assert config.enabled
        assert config.uses_burst_model

    def test_probabilities_validated(self):
        with pytest.raises(NetworkError):
            FaultConfig(loss_rate=1.5)
        with pytest.raises(NetworkError):
            FaultConfig(burst_loss_rate=-0.1)

    def test_burst_needs_exit_probability(self):
        with pytest.raises(NetworkError):
            FaultConfig(burst_on_probability=0.1)


class TestFaultInjector:
    def test_deterministic_for_a_seed(self):
        config = FaultConfig(loss_rate=0.3)

        def decisions():
            injector = FaultInjector(
                config, RandomStream(7, "faults"), channel="up"
            )
            return [injector.should_drop(float(i), 100) for i in range(50)]

        assert decisions() == decisions()

    def test_drop_rate_roughly_matches(self):
        injector = FaultInjector(
            FaultConfig(loss_rate=0.2), RandomStream(3, "f")
        )
        drops = sum(
            injector.should_drop(float(i), 10) for i in range(2000)
        )
        assert 0.15 < drops / 2000 < 0.25

    def test_trace_records_drops(self):
        injector = FaultInjector(
            FaultConfig(loss_rate=1.0), RandomStream(1, "f"), channel="dl"
        )
        assert injector.should_drop(5.0, 123)
        [event] = injector.trace
        assert event.kind == KIND_DROP
        assert event.time == 5.0
        assert event.channel == "dl"
        assert event.size_bytes == 123

    def test_trace_limit_caps_memory_not_counters(self):
        injector = FaultInjector(
            FaultConfig(loss_rate=1.0),
            RandomStream(1, "f"),
            trace_limit=3,
        )
        for i in range(10):
            injector.should_drop(float(i), 1)
        assert len(injector.trace) == 3
        assert injector.drops == 10

    def test_burst_chain_enters_and_drops(self):
        config = FaultConfig(
            burst_loss_rate=1.0,
            burst_on_probability=1.0,
            burst_off_probability=1e-9,
        )
        injector = FaultInjector(config, RandomStream(2, "f"))
        assert injector.should_drop(0.0, 10)
        assert injector.state == BAD
        assert injector.bursts_entered == 1
        assert injector.burst_drops == 1
        assert injector.trace[0].kind == KIND_BURST_ENTER

    def test_good_state_loss_rate_zero_never_drops(self):
        config = FaultConfig(
            loss_rate=0.0,
            burst_loss_rate=1.0,
            burst_on_probability=1e-12,
            burst_off_probability=1.0,
        )
        injector = FaultInjector(config, RandomStream(4, "f"))
        assert not any(
            injector.should_drop(float(i), 1) for i in range(200)
        )

    def test_note_abort_recorded(self):
        injector = FaultInjector(
            FaultConfig(loss_rate=0.5), RandomStream(1, "f")
        )
        injector.note_abort(2.5, 400)
        assert injector.aborts == 1
        assert injector.trace[0].kind == KIND_ABORT

    def test_merged_trace_time_ordered(self):
        config = FaultConfig(loss_rate=1.0)
        a = FaultInjector(config, RandomStream(1, "a"), channel="a")
        b = FaultInjector(config, RandomStream(1, "b"), channel="b")
        a.should_drop(3.0, 1)
        b.should_drop(1.0, 1)
        a.should_drop(2.0, 1)
        times = [e.time for e in merged_trace([a, b])]
        assert times == sorted(times)


class TestFaultyChannel:
    def _channel(self, loss_rate, seed=11):
        env = Environment()
        injector = FaultInjector(
            FaultConfig(loss_rate=loss_rate),
            RandomStream(seed, "f"),
            channel="up",
        )
        return env, WirelessChannel(
            env, bandwidth_bps=8_000, injector=injector
        )

    def test_certain_loss_yields_dropped(self):
        env, channel = self._channel(1.0)
        outcomes = []

        def sender(env):
            outcome = yield from channel.transmit(1000)
            outcomes.append((outcome, env.now))

        env.process(sender(env))
        env.run()
        # The message still burned its full airtime before being lost.
        assert outcomes == [(DROPPED, 1.0)]
        assert channel.bytes_carried == 1000
        assert channel.bytes_delivered == 0
        assert channel.messages_dropped == 1

    def test_no_loss_yields_delivered(self):
        env, channel = self._channel(0.0)
        outcomes = []

        def sender(env):
            outcome = yield from channel.transmit(1000)
            outcomes.append(outcome)

        env.process(sender(env))
        env.run()
        assert outcomes == [DELIVERED]
        assert channel.bytes_delivered == 1000

    def test_deadline_aborts_before_completion(self):
        env, channel = self._channel(0.0)
        outcomes = []

        def sender(env):
            # 1000 B at 1 kB/s takes 1 s; the deadline cuts it at 0.4 s.
            outcome = yield from channel.transmit(1000, deadline=0.4)
            outcomes.append((outcome, env.now))

        env.process(sender(env))
        env.run()
        assert outcomes == [(ABORTED, 0.4)]
        assert channel.messages_aborted == 1
        assert channel.bytes_aborted == pytest.approx(400.0)
        assert channel.bytes_carried == 0
        assert channel.injector.aborts == 1

    def test_past_deadline_aborts_instantly(self):
        env, channel = self._channel(0.0)
        outcomes = []

        def sender(env):
            yield env.timeout(5.0)
            outcome = yield from channel.transmit(1000, deadline=2.0)
            outcomes.append((outcome, env.now))

        env.process(sender(env))
        env.run()
        assert outcomes == [(ABORTED, 5.0)]
        assert channel.bytes_aborted == 0.0


class TestNetworkFaults:
    def test_faults_need_rng(self):
        with pytest.raises(NetworkError):
            Network(Environment(), faults=FaultConfig(loss_rate=0.5))

    def test_disabled_config_means_no_injectors(self):
        network = Network(
            Environment(),
            faults=FaultConfig(),
            fault_rng=RandomStream(1, "f"),
        )
        assert not network.faults_enabled
        assert all(c.injector is None for c in network.channels())

    def test_channels_get_independent_injectors(self):
        network = Network(
            Environment(),
            faults=FaultConfig(loss_rate=0.5),
            fault_rng=RandomStream(1, "f"),
        )
        injectors = [c.injector for c in network.channels()]
        assert all(i is not None for i in injectors)
        assert len({id(i.rng) for i in injectors}) == 3

    def test_abort_deadline_off_without_faults(self):
        env = Environment()
        schedule = DisconnectionSchedule({0: [(5.0, 10.0)]})
        network = Network(env, schedule=schedule)
        assert network.abort_deadline(0) is None

    def test_abort_deadline_is_next_window_start(self):
        env = Environment()
        schedule = DisconnectionSchedule({0: [(5.0, 10.0)]})
        network = Network(
            env,
            schedule=schedule,
            faults=FaultConfig(loss_rate=0.5),
            fault_rng=RandomStream(1, "f"),
        )
        assert network.abort_deadline(0) == 5.0
        assert network.abort_deadline(1) is None
        env._now = 7.0  # inside the window: cut immediately
        assert network.abort_deadline(0) == 7.0
        env._now = 12.0
        assert network.abort_deadline(0) is None


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(NetworkError):
            RecoveryPolicy(timeout_seconds=0.0)
        with pytest.raises(NetworkError):
            RecoveryPolicy(timeout_seconds=10.0, retry_budget=-1)
        with pytest.raises(NetworkError):
            RecoveryPolicy(timeout_seconds=10.0, backoff_multiplier=0.5)
        with pytest.raises(NetworkError):
            RecoveryPolicy(timeout_seconds=10.0, backoff_jitter=2.0)

    def test_max_attempts(self):
        assert RecoveryPolicy(timeout_seconds=1.0).max_attempts == 1
        assert (
            RecoveryPolicy(timeout_seconds=1.0, retry_budget=3).max_attempts
            == 4
        )

    def test_backoff_grows_exponentially(self):
        policy = RecoveryPolicy(
            timeout_seconds=1.0,
            backoff_base_seconds=2.0,
            backoff_multiplier=3.0,
            backoff_jitter=0.0,
        )
        rng = RandomStream(1, "b")
        assert policy.backoff_delay(0, rng) == pytest.approx(2.0)
        assert policy.backoff_delay(1, rng) == pytest.approx(6.0)
        assert policy.backoff_delay(2, rng) == pytest.approx(18.0)

    def test_jitter_stays_bounded_and_seeded(self):
        policy = RecoveryPolicy(
            timeout_seconds=1.0,
            backoff_base_seconds=10.0,
            backoff_multiplier=2.0,
            backoff_jitter=0.5,
        )
        delays = [
            policy.backoff_delay(0, RandomStream(s, "b")) for s in range(30)
        ]
        assert all(10.0 <= d <= 15.0 for d in delays)
        again = [
            policy.backoff_delay(0, RandomStream(s, "b")) for s in range(30)
        ]
        assert delays == again
