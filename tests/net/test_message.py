"""Unit tests for wire-message size accounting."""

import math

import pytest

from repro.core.granularity import CachingGranularity
from repro.net.message import (
    ATTR_ID_BYTES,
    HEADER_BYTES,
    OID_BYTES,
    QUERY_DESCRIPTOR_BYTES,
    REFRESH_TIME_BYTES,
    ReplyItem,
    ReplyMessage,
    RequestMessage,
    UpdateValue,
)
from repro.oodb.objects import OID


def oid(n):
    return OID("Root", n)


class TestRequestSize:
    def test_minimal_request(self):
        request = RequestMessage(
            client_id=0,
            query_id=1,
            granularity=CachingGranularity.ATTRIBUTE,
            needed={oid(1): ("a0",)},
        )
        assert request.size_bytes == (
            HEADER_BYTES + QUERY_DESCRIPTOR_BYTES + OID_BYTES + ATTR_ID_BYTES
        )

    def test_object_request_has_no_attribute_ids(self):
        request = RequestMessage(
            client_id=0,
            query_id=1,
            granularity=CachingGranularity.OBJECT,
            needed={oid(1): (), oid(2): ()},
        )
        assert request.size_bytes == (
            HEADER_BYTES + QUERY_DESCRIPTOR_BYTES + 2 * OID_BYTES
        )

    def test_existent_entries_grouped_by_oid(self):
        base = RequestMessage(
            client_id=0,
            query_id=1,
            granularity=CachingGranularity.ATTRIBUTE,
            needed={oid(1): ("a0",)},
        )
        with_existent = RequestMessage(
            client_id=0,
            query_id=1,
            granularity=CachingGranularity.ATTRIBUTE,
            needed={oid(1): ("a0",)},
            existent=((oid(1), "a1"), (oid(1), "a2")),
        )
        # Same OID already on the wire: only two attribute ids added.
        assert (
            with_existent.size_bytes
            == base.size_bytes + 2 * ATTR_ID_BYTES
        )

    def test_existent_entry_for_new_oid_pays_oid(self):
        request = RequestMessage(
            client_id=0,
            query_id=1,
            granularity=CachingGranularity.ATTRIBUTE,
            needed={oid(1): ("a0",)},
            existent=((oid(2), "a1"),),
        )
        expected = (
            HEADER_BYTES
            + QUERY_DESCRIPTOR_BYTES
            + OID_BYTES + ATTR_ID_BYTES  # needed
            + OID_BYTES + ATTR_ID_BYTES  # existent on a fresh oid
        )
        assert request.size_bytes == expected

    def test_object_granularity_existent_has_no_attr_id(self):
        request = RequestMessage(
            client_id=0,
            query_id=1,
            granularity=CachingGranularity.OBJECT,
            needed={oid(1): ()},
            existent=((oid(2), None),),
        )
        assert request.size_bytes == (
            HEADER_BYTES + QUERY_DESCRIPTOR_BYTES + 2 * OID_BYTES
        )

    def test_update_payload_counted(self):
        request = RequestMessage(
            client_id=0,
            query_id=1,
            granularity=CachingGranularity.ATTRIBUTE,
            needed={oid(1): ("a0",)},
            updates={oid(1): (UpdateValue("a0", 7, 80),)},
        )
        expected = (
            HEADER_BYTES
            + QUERY_DESCRIPTOR_BYTES
            + OID_BYTES + ATTR_ID_BYTES
            + ATTR_ID_BYTES + 80  # update rides the same oid
        )
        assert request.size_bytes == expected

    def test_pure_update_detected(self):
        request = RequestMessage(
            client_id=0,
            query_id=1,
            granularity=CachingGranularity.ATTRIBUTE,
            needed={},
            updates={oid(1): (UpdateValue("a0", 7, 80),)},
        )
        assert request.is_pure_update


class TestReplySize:
    def test_attribute_items(self):
        items = (
            ReplyItem(oid(1), "a0", 5, 0, 100.0, 80),
            ReplyItem(oid(1), "a1", 6, 0, 100.0, 80),
        )
        reply = ReplyMessage(client_id=0, query_id=1, items=items)
        expected = HEADER_BYTES + OID_BYTES + 2 * (
            ATTR_ID_BYTES + 80 + REFRESH_TIME_BYTES
        )
        assert reply.size_bytes == expected

    def test_object_item(self):
        item = ReplyItem(oid(1), None, {"a0": 5}, 0, math.inf, 960)
        reply = ReplyMessage(client_id=0, query_id=1, items=(item,))
        assert reply.size_bytes == (
            HEADER_BYTES + OID_BYTES + 960 + REFRESH_TIME_BYTES
        )

    def test_distinct_oids_counted_once(self):
        items = tuple(
            ReplyItem(oid(n), "a0", 1, 0, 1.0, 80) for n in (1, 1, 2)
        )
        reply = ReplyMessage(client_id=0, query_id=1, items=items)
        assert reply.size_bytes == HEADER_BYTES + 2 * OID_BYTES + 3 * (
            ATTR_ID_BYTES + 80 + REFRESH_TIME_BYTES
        )

    def test_expiry_deadline_finite(self):
        item = ReplyItem(oid(1), "a0", 5, 0, 100.0, 80)
        reply = ReplyMessage(client_id=0, query_id=1, items=(item,))
        assert reply.expiry_deadline(item, now=50.0) == 150.0

    def test_expiry_deadline_infinite(self):
        item = ReplyItem(oid(1), "a0", 5, 0, math.inf, 80)
        reply = ReplyMessage(client_id=0, query_id=1, items=(item,))
        assert math.isinf(reply.expiry_deadline(item, now=50.0))

    def test_trailer_flag_defaults_false(self):
        reply = ReplyMessage(client_id=0, query_id=1, items=())
        assert not reply.is_trailer


class TestSizeIsInsertionOrderIndependent:
    """Regression for the REP003 fixes: wire sizes are iterated via
    sorted(...) so dict build order can never reach the accounting."""

    def test_needed_order(self):
        def make(needed):
            return RequestMessage(
                client_id=0,
                query_id=1,
                granularity=CachingGranularity.ATTRIBUTE,
                needed=needed,
            )

        forward = {oid(n): ("a0", "a1") for n in (1, 2, 3)}
        backward = {oid(n): ("a0", "a1") for n in (3, 2, 1)}
        assert make(forward).size_bytes == make(backward).size_bytes

    def test_updates_order(self):
        def make(updates):
            return RequestMessage(
                client_id=0,
                query_id=1,
                granularity=CachingGranularity.ATTRIBUTE,
                needed={},
                updates=updates,
            )

        changes = (UpdateValue("a0", 7, 80),)
        forward = {oid(n): changes for n in (1, 2, 3)}
        backward = {oid(n): changes for n in (3, 2, 1)}
        assert make(forward).size_bytes == make(backward).size_bytes
