"""Unit and property tests for bucketed ratio time series."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.timeseries import BucketedRatio


class TestBucketedRatio:
    def test_bucket_width_validation(self):
        with pytest.raises(ValueError):
            BucketedRatio(0.0)

    def test_empty_series(self):
        series = BucketedRatio(10.0)
        assert series.series() == []
        assert series.ratio_between(0, 100) == 0.0
        assert series.sparkline() == ""

    def test_bucketing(self):
        series = BucketedRatio(10.0)
        series.record(1.0, True)
        series.record(5.0, False)
        series.record(15.0, True)
        assert series.series() == [(0.0, 0.5, 2), (10.0, 1.0, 1)]

    def test_ratio_between(self):
        series = BucketedRatio(10.0)
        for t, success in ((1.0, True), (11.0, False), (21.0, True)):
            series.record(t, success)
        assert series.ratio_between(0.0, 20.0) == pytest.approx(0.5)
        assert series.ratio_between(10.0, 30.0) == pytest.approx(0.5)
        assert series.ratio_between(500.0, 600.0) == 0.0

    def test_merge(self):
        a = BucketedRatio(10.0)
        b = BucketedRatio(10.0)
        a.record(1.0, True)
        b.record(2.0, False)
        b.record(15.0, True)
        a.merge(b)
        assert a.series() == [(0.0, 0.5, 2), (10.0, 1.0, 1)]

    def test_merge_width_mismatch(self):
        with pytest.raises(ValueError):
            BucketedRatio(10.0).merge(BucketedRatio(20.0))

    def test_merge_width_mismatch_names_both_widths(self):
        with pytest.raises(ValueError, match=r"10.*20|20.*10"):
            BucketedRatio(10.0).merge(BucketedRatio(20.0))

    def test_merge_into_empty_and_from_empty(self):
        target = BucketedRatio(10.0)
        source = BucketedRatio(10.0)
        source.record(5.0, True)
        target.merge(source)
        assert target.series() == [(0.0, 1.0, 1)]
        target.merge(BucketedRatio(10.0))  # empty source: no-op
        assert target.series() == [(0.0, 1.0, 1)]

    def test_record_rejects_negative_time(self):
        series = BucketedRatio(10.0)
        with pytest.raises(ValueError, match="negative"):
            series.record(-0.5, True)
        assert series.series() == []

    def test_ratio_between_uses_bucket_start_for_membership(self):
        # A sample at t=19 lands in the [10, 20) bucket; the window
        # [15, 25) only *partially* covers that bucket, but membership
        # is decided by the bucket's start time — so the sample is
        # excluded even though its raw timestamp lies inside the window.
        series = BucketedRatio(10.0)
        series.record(19.0, True)
        series.record(21.0, False)
        assert series.ratio_between(15.0, 25.0) == 0.0
        assert series.ratio_between(10.0, 25.0) == pytest.approx(0.5)

    def test_ratio_between_empty_window(self):
        series = BucketedRatio(10.0)
        series.record(1.0, True)
        assert series.ratio_between(50.0, 50.0) == 0.0

    def test_sparkline_length_and_range(self):
        series = BucketedRatio(1.0)
        for t in range(200):
            series.record(float(t), t % 3 == 0)
        line = series.sparkline(width=40)
        assert len(line) == 40

    def test_sparkline_shows_contrast(self):
        series = BucketedRatio(1.0)
        for t in range(10):
            series.record(float(t), False)
        for t in range(10, 20):
            series.record(float(t), True)
        line = series.sparkline(width=20)
        assert line[0] != line[-1]


@settings(max_examples=50, deadline=None)
@given(
    samples=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            st.booleans(),
        ),
        max_size=200,
    )
)
def test_series_conserves_counts(samples):
    series = BucketedRatio(100.0)
    for time, success in samples:
        series.record(time, success)
    points = series.series()
    assert sum(count for __, __, count in points) == len(samples)
    for __, ratio, __ in points:
        assert 0.0 <= ratio <= 1.0
    total_hits = sum(
        round(ratio * count) for __, ratio, count in points
    )
    assert total_hits == sum(1 for __, success in samples if success)
