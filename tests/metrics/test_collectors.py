"""Unit tests for metric collectors and summaries."""

import pytest

from repro.metrics.collectors import ClientMetrics, MetricsSummary


def make_client(client_id=0, accesses=(), queries=()):
    metrics = ClientMetrics(client_id)
    for is_hit, is_error in accesses:
        metrics.record_access(is_hit, is_error)
    for response, connected in queries:
        metrics.record_query(response, connected)
    return metrics


class TestClientMetrics:
    def test_access_accounting(self):
        metrics = make_client(
            accesses=[(True, False), (True, True), (False, False)]
        )
        assert metrics.hit.ratio == pytest.approx(2 / 3)
        assert metrics.error.ratio == pytest.approx(1 / 3)

    def test_query_accounting(self):
        metrics = make_client(
            queries=[(1.0, True), (3.0, True), (0.5, False)]
        )
        assert metrics.queries == 3
        assert metrics.disconnected_queries == 1
        assert metrics.response.mean == pytest.approx(1.5)

    def test_initial_state(self):
        metrics = ClientMetrics(7)
        assert metrics.hit.ratio == 0.0
        assert metrics.queries == 0
        assert metrics.bytes_sent == 0


class TestMetricsSummary:
    def test_requires_clients(self):
        with pytest.raises(ValueError):
            MetricsSummary([])

    def test_aggregates_across_clients(self):
        a = make_client(0, accesses=[(True, False)] * 3,
                        queries=[(1.0, True)])
        b = make_client(1, accesses=[(False, False)] * 1,
                        queries=[(3.0, True)])
        summary = MetricsSummary([a, b])
        assert summary.hit_ratio == pytest.approx(0.75)
        assert summary.response_time == pytest.approx(2.0)
        assert summary.total_queries == 2
        assert summary.total_accesses == 4

    def test_error_rate_aggregation(self):
        a = make_client(0, accesses=[(True, True), (True, False)])
        b = make_client(1, accesses=[(False, False)] * 2)
        summary = MetricsSummary([a, b])
        assert summary.error_rate == pytest.approx(0.25)

    def test_confidence_interval(self):
        a = make_client(
            0, queries=[(1.0, True), (2.0, True), (3.0, True)]
        )
        summary = MetricsSummary([a])
        low, high = summary.response_confidence_interval()
        assert low <= summary.response_time <= high

    def test_row_rendering(self):
        a = make_client(0, accesses=[(True, False)], queries=[(1.0, True)])
        row = MetricsSummary([a]).row("label")
        assert row.label == "label"
        assert "label" in row.formatted()
        assert row.queries == 1
