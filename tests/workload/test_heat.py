"""Unit tests for heat distributions."""

import pytest

from repro.errors import ConfigurationError
from repro.oodb.objects import OID
from repro.sim.rand import RandomStream
from repro.workload.heat import (
    ChangingSkewedHeat,
    CyclicHeat,
    SequentialScanHeat,
    ShiftingHotspotHeat,
    SkewedHeat,
    UniformHeat,
    ZipfHeat,
)


def oids(n=100):
    return [OID("Root", i) for i in range(n)]


class TestUniformHeat:
    def test_selects_distinct(self):
        heat = UniformHeat(oids(), RandomStream(1, "h"))
        picks = heat.select_objects(0, 10)
        assert len(set(picks)) == 10

    def test_rejects_overselection(self):
        heat = UniformHeat(oids(5), RandomStream(1, "h"))
        with pytest.raises(ConfigurationError):
            heat.select_objects(0, 6)

    def test_rejects_empty_population(self):
        with pytest.raises(ConfigurationError):
            UniformHeat([], RandomStream(1, "h"))


class TestSkewedHeat:
    def test_hot_set_size(self):
        heat = SkewedHeat(oids(100), RandomStream(1, "h"), hot_fraction=0.2)
        assert len(heat.hot_set) == 20

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SkewedHeat(oids(), RandomStream(1, "h"), hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SkewedHeat(
                oids(), RandomStream(1, "h"), hot_access_probability=1.5
            )

    def test_80_20_rule_holds_statistically(self):
        heat = SkewedHeat(oids(200), RandomStream(7, "h"))
        hot = heat.hot_set
        hot_picks = 0
        total = 0
        for q in range(500):
            for oid in heat.select_objects(q, 10):
                total += 1
                hot_picks += oid in hot
        assert hot_picks / total == pytest.approx(0.8, abs=0.05)

    def test_distinct_within_query(self):
        heat = SkewedHeat(oids(50), RandomStream(3, "h"))
        picks = heat.select_objects(0, 20)
        assert len(set(picks)) == 20

    def test_different_seeds_different_hot_sets(self):
        a = SkewedHeat(oids(200), RandomStream(1, "a"))
        b = SkewedHeat(oids(200), RandomStream(1, "b"))
        assert a.hot_set != b.hot_set

    def test_degenerate_skew_completes(self):
        """Extreme configs fall back to deterministic fill, not a hang."""
        heat = SkewedHeat(
            oids(30),
            RandomStream(1, "h"),
            hot_fraction=0.05,  # one hot object
            hot_access_probability=1.0,
        )
        picks = heat.select_objects(0, 10)
        assert len(set(picks)) == 10


class TestChangingSkewedHeat:
    def test_hot_set_changes_at_interval(self):
        heat = ChangingSkewedHeat(
            oids(200), RandomStream(5, "h"), change_every=10
        )
        before = heat.hot_set
        for q in range(10):
            heat.select_objects(q, 5)
        heat.select_objects(10, 5)  # crosses the era boundary
        assert heat.hot_set != before

    def test_hot_set_stable_within_era(self):
        heat = ChangingSkewedHeat(
            oids(200), RandomStream(5, "h"), change_every=100
        )
        before = heat.hot_set
        for q in range(50):
            heat.select_objects(q, 5)
        assert heat.hot_set == before

    def test_change_interval_validation(self):
        with pytest.raises(ConfigurationError):
            ChangingSkewedHeat(oids(), RandomStream(1, "h"), change_every=0)

    def test_describe_includes_rate(self):
        heat = ChangingSkewedHeat(
            oids(), RandomStream(1, "h"), change_every=300
        )
        assert heat.describe() == "CSH-300"


class TestCyclicHeat:
    def test_scan_covers_database_in_order(self):
        population = oids(40)
        heat = CyclicHeat(
            population, RandomStream(1, "h"), scan_fraction=1.0
        )
        first = heat.select_objects(0, 10)
        second = heat.select_objects(1, 10)
        assert first == sorted(population)[:10]
        assert second == sorted(population)[10:20]

    def test_scan_wraps_around(self):
        population = oids(20)
        heat = CyclicHeat(
            population, RandomStream(1, "h"), scan_fraction=1.0
        )
        heat.select_objects(0, 15)
        wrapped = heat.select_objects(1, 15)
        # Cursor wrapped: the second query re-references early objects.
        assert sorted(population)[0] in wrapped

    def test_mixes_hot_and_scan(self):
        heat = CyclicHeat(
            oids(100), RandomStream(2, "h"),
            hot_fraction=0.2, scan_fraction=0.5,
        )
        picks = heat.select_objects(0, 10)
        assert len(set(picks)) == 10
        hot_picks = sum(1 for oid in picks if oid in heat.hot_set)
        assert hot_picks >= 3  # roughly half, minus scan/hot collisions

    def test_scan_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            CyclicHeat(oids(), RandomStream(1, "h"), scan_fraction=1.5)


class TestSequentialScanHeat:
    def test_scan_queries_walk_in_oid_order(self):
        population = oids(40)
        heat = SequentialScanHeat(
            population, RandomStream(1, "h"), scan_every=5
        )
        first = heat.select_objects(0, 10)  # index 0: a scan query
        second = heat.select_objects(5, 10)  # next scan continues
        assert first == sorted(population)[:10]
        assert second == sorted(population)[10:20]

    def test_non_scan_queries_sample_skewed(self):
        heat = SequentialScanHeat(
            oids(200), RandomStream(7, "h"), scan_every=5
        )
        hot = heat.hot_set
        hot_picks = total = 0
        for q in range(1, 500):
            if q % 5 == 0:
                continue
            for oid in heat.select_objects(q, 10):
                total += 1
                hot_picks += oid in hot
        assert hot_picks / total == pytest.approx(0.8, abs=0.05)

    def test_scan_cursor_wraps(self):
        population = oids(15)
        heat = SequentialScanHeat(
            population, RandomStream(1, "h"), scan_every=1
        )
        heat.select_objects(0, 10)
        wrapped = heat.select_objects(1, 10)
        assert sorted(population)[0] in wrapped

    def test_interval_validation(self):
        with pytest.raises(ConfigurationError):
            SequentialScanHeat(oids(), RandomStream(1, "h"), scan_every=0)

    def test_describe(self):
        heat = SequentialScanHeat(oids(), RandomStream(1, "h"), scan_every=7)
        assert heat.describe() == "scan-7"


class TestZipfHeat:
    def test_selects_distinct(self):
        heat = ZipfHeat(oids(100), RandomStream(1, "h"))
        picks = heat.select_objects(0, 20)
        assert len(set(picks)) == 20

    def test_head_ranks_dominate(self):
        """The top-10% ranked objects must draw far more than 10%."""
        heat = ZipfHeat(oids(200), RandomStream(9, "h"), s=0.99)
        head = set(heat._ranked[:20])
        head_picks = total = 0
        for q in range(500):
            for oid in heat.select_objects(q, 10):
                total += 1
                head_picks += oid in head
        assert head_picks / total > 0.3

    def test_rankings_differ_per_stream(self):
        a = ZipfHeat(oids(100), RandomStream(1, "a"))
        b = ZipfHeat(oids(100), RandomStream(1, "b"))
        assert a._ranked != b._ranked

    def test_deterministic_for_stream(self):
        def run():
            heat = ZipfHeat(oids(100), RandomStream(3, "h"))
            return [heat.select_objects(q, 5) for q in range(20)]

        assert run() == run()

    def test_exponent_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfHeat(oids(), RandomStream(1, "h"), s=0.0)
        with pytest.raises(ConfigurationError):
            ZipfHeat(oids(), RandomStream(1, "h"), s=-1.0)

    def test_extreme_skew_completes(self):
        heat = ZipfHeat(oids(30), RandomStream(1, "h"), s=5.0)
        picks = heat.select_objects(0, 20)
        assert len(set(picks)) == 20

    def test_describe(self):
        heat = ZipfHeat(oids(), RandomStream(1, "h"), s=0.99)
        assert heat.describe() == "zipf-0.99"


class TestShiftingHotspotHeat:
    def test_hot_window_is_contiguous(self):
        heat = ShiftingHotspotHeat(
            oids(100), RandomStream(4, "h"), shift_every=50
        )
        ordered = sorted(oids(100))
        indices = sorted(ordered.index(o) for o in heat.hot_set)
        n, width = len(ordered), len(indices)
        # Contiguity modulo wrap-around: consecutive indices differ by
        # one except at most a single wrap gap.
        gaps = [
            (indices[(i + 1) % width] - indices[i]) % n
            for i in range(width)
        ]
        assert sorted(gaps)[:-1] == [1] * (width - 1)

    def test_hotspot_slides_at_interval_with_overlap(self):
        heat = ShiftingHotspotHeat(
            oids(200), RandomStream(5, "h"), shift_every=10
        )
        before = heat.hot_set
        heat.select_objects(10, 5)  # crosses the era boundary
        after = heat.hot_set
        assert after != before
        # Slides by half its width: successive hot sets overlap.
        assert before & after

    def test_stable_within_era(self):
        heat = ShiftingHotspotHeat(
            oids(200), RandomStream(5, "h"), shift_every=100
        )
        before = heat.hot_set
        for q in range(50):
            heat.select_objects(q, 5)
        assert heat.hot_set == before

    def test_long_gap_slides_once_per_era(self):
        """Crossing many eras at once slides by step * eras, not one."""
        a = ShiftingHotspotHeat(
            oids(100), RandomStream(6, "h"), shift_every=10
        )
        b = ShiftingHotspotHeat(
            oids(100), RandomStream(6, "h"), shift_every=10
        )
        a.select_objects(30, 1)  # jumps three eras
        for q in (10, 20, 30):  # walks the same three boundaries
            b.select_objects(q, 1)
        assert a.hot_set == b.hot_set

    def test_hot_bias_holds(self):
        heat = ShiftingHotspotHeat(
            oids(200), RandomStream(8, "h"), shift_every=10_000
        )
        hot = heat.hot_set
        hot_picks = total = 0
        for q in range(500):
            for oid in heat.select_objects(q, 10):
                total += 1
                hot_picks += oid in hot
        assert hot_picks / total == pytest.approx(0.8, abs=0.05)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ShiftingHotspotHeat(oids(), RandomStream(1, "h"), shift_every=0)
        with pytest.raises(ConfigurationError):
            ShiftingHotspotHeat(
                oids(), RandomStream(1, "h"), hot_fraction=1.0
            )

    def test_describe(self):
        heat = ShiftingHotspotHeat(
            oids(), RandomStream(1, "h"), shift_every=250
        )
        assert heat.describe() == "hotspot-250"
