"""Unit tests for the query generator."""

import pytest

from repro.errors import ConfigurationError
from repro.oodb.database import build_default_database
from repro.oodb.query import QueryKind
from repro.sim.rand import RandomStream
from repro.workload.heat import UniformHeat
from repro.workload.queries import QueryWorkload, skewed_weights


@pytest.fixture(scope="module")
def database():
    return build_default_database(100)


def make_workload(database, **kwargs):
    rng = RandomStream(kwargs.pop("seed", 1), "w")
    heat = UniformHeat(database.oids("Root"), rng.fork("heat"))
    defaults = dict(
        client_id=0,
        database=database,
        heat=heat,
        rng=rng.fork("queries"),
        selectivity=5,
        attrs_per_object=3,
    )
    defaults.update(kwargs)
    return QueryWorkload(**defaults)


class TestSkewedWeights:
    def test_geometric_shape(self):
        weights = skewed_weights(4, skew=0.5)
        assert weights == [1.0, 0.5, 0.25, 0.125]

    def test_all_positive(self):
        assert all(w > 0 for w in skewed_weights(12, 0.8))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            skewed_weights(0)
        with pytest.raises(ConfigurationError):
            skewed_weights(3, skew=0.0)
        with pytest.raises(ConfigurationError):
            skewed_weights(3, skew=1.5)


class TestAssociativeQueries:
    def test_touches_selectivity_objects(self, database):
        workload = make_workload(database)
        query = workload.next_query(1)
        assert len(query.oids()) == 5
        assert query.kind is QueryKind.ASSOCIATIVE

    def test_attrs_per_object(self, database):
        workload = make_workload(database)
        query = workload.next_query(1)
        for oid in query.oids():
            attrs = query.attributes_of(oid)
            assert len(attrs) == 3
            assert len(set(attrs)) == 3
            assert all(a.startswith("a") for a in attrs)

    def test_no_updates_by_default(self, database):
        workload = make_workload(database)
        query = workload.next_query(1)
        assert not query.has_updates

    def test_validation(self, database):
        with pytest.raises(ConfigurationError):
            make_workload(database, selectivity=0)
        with pytest.raises(ConfigurationError):
            make_workload(database, update_probability=1.5)
        with pytest.raises(ConfigurationError):
            make_workload(database, attrs_per_object=10)


class TestNavigationalQueries:
    def test_traverses_relationships(self, database):
        workload = make_workload(
            database, kind=QueryKind.NAVIGATIONAL, selectivity=5
        )
        query = workload.next_query(1)
        # Each selected object touches 3 primitives + 1 relationship,
        # each navigation target touches 3 primitives.
        relationship_accesses = [
            a for a in query.accesses if a.attribute.startswith("r")
        ]
        assert len(relationship_accesses) == 5
        assert len(query.accesses) == 5 * (3 + 1) + 5 * 3

    def test_navigation_targets_match_database_state(self, database):
        workload = make_workload(database, kind=QueryKind.NAVIGATIONAL)
        query = workload.next_query(1)
        for access in query.accesses:
            if access.attribute.startswith("r"):
                target = database.get(access.oid).related_oid(
                    access.attribute
                )
                assert target in database

    def test_roughly_doubles_selectivity(self, database):
        aq = make_workload(database, seed=3).next_query(1)
        nq = make_workload(
            database, seed=3, kind=QueryKind.NAVIGATIONAL
        ).next_query(1)
        assert len(nq.oids()) > len(aq.oids())


class TestUpdates:
    def test_update_probability_one_marks_everything(self, database):
        workload = make_workload(database, update_probability=1.0)
        query = workload.next_query(1)
        assert all(a.is_update for a in query.accesses)
        assert set(query.updates()) == set(query.oids())

    def test_update_marks_whole_object(self, database):
        """All touched attributes of an updated object are modified."""
        workload = make_workload(database, update_probability=0.5, seed=9)
        query = workload.next_query(1)
        for oid, attrs in query.updates().items():
            assert sorted(attrs) == sorted(query.attributes_of(oid))

    def test_update_rate_statistical(self, database):
        workload = make_workload(database, update_probability=0.3, seed=5)
        updated = 0
        total = 0
        for q in range(200):
            query = workload.next_query(q)
            updates = query.updates()
            total += len(query.oids())
            updated += len(updates)
        assert updated / total == pytest.approx(0.3, abs=0.05)

    def test_new_value_for_relationship_stays_valid(self, database):
        workload = make_workload(database)
        oid = database.oids("Root")[0]
        for __ in range(100):
            value = workload.new_value_for(oid, "r0")
            assert 0 <= value < 100
            assert value != oid.number

    def test_new_value_for_primitive(self, database):
        workload = make_workload(database)
        oid = database.oids("Root")[0]
        value = workload.new_value_for(oid, "a0")
        assert isinstance(value, int)


class TestAttributeSkew:
    def test_per_client_rankings_differ(self, database):
        counts = {}
        for client in (0, 1):
            workload = make_workload(database, client_id=client, seed=client)
            tally: dict[str, int] = {}
            for q in range(100):
                for access in workload.next_query(q).accesses:
                    tally[access.attribute] = (
                        tally.get(access.attribute, 0) + 1
                    )
            counts[client] = max(tally, key=tally.get)
        # Seeded shuffles make the hottest attribute client-specific
        # (different seeds here guarantee different rankings).
        assert counts[0] != counts[1]

    def test_popular_attribute_dominates(self, database):
        workload = make_workload(database, attribute_skew=0.5)
        tally: dict[str, int] = {}
        for q in range(300):
            for access in workload.next_query(q).accesses:
                tally[access.attribute] = tally.get(access.attribute, 0) + 1
        shares = sorted(tally.values(), reverse=True)
        assert shares[0] > 2 * shares[-1]
