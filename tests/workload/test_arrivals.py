"""Unit tests for arrival processes, including the bursty day profile."""

import pytest

from repro._units import DAY, HOUR
from repro.errors import ConfigurationError
from repro.sim.rand import RandomStream
from repro.workload.arrivals import (
    BurstyArrival,
    PAPER_DAY_PROFILE,
    PoissonArrival,
    RatePeriod,
)


class TestPoissonArrival:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrival(RandomStream(1, "a"), rate=0.0)

    def test_mean_interarrival(self):
        process = PoissonArrival(RandomStream(3, "a"), rate=0.01)
        n = 20_000
        total = sum(process.next_interarrival(0.0) for __ in range(n))
        assert total / n == pytest.approx(100.0, rel=0.05)

    def test_describe(self):
        process = PoissonArrival(RandomStream(1, "a"), rate=0.01)
        assert "0.01" in process.describe()


class TestRatePeriod:
    def test_bounds_validation(self):
        with pytest.raises(ConfigurationError):
            RatePeriod(5.0, 5.0, 0.01)
        with pytest.raises(ConfigurationError):
            RatePeriod(-1.0, 5.0, 0.01)
        with pytest.raises(ConfigurationError):
            RatePeriod(0.0, 25.0, 0.01)
        with pytest.raises(ConfigurationError):
            RatePeriod(0.0, 5.0, 0.0)


class TestBurstyArrival:
    def test_paper_profile_daily_mean_is_001(self):
        """The paper's rates integrate to the Poisson rate of 0.01/s."""
        process = BurstyArrival(RandomStream(1, "a"))
        assert process.daily_mean_rate() == pytest.approx(0.01)

    def test_profile_must_cover_day(self):
        with pytest.raises(ConfigurationError):
            BurstyArrival(
                RandomStream(1, "a"),
                profile=[RatePeriod(0.0, 12.0, 0.01)],
            )

    def test_profile_rejects_gaps(self):
        with pytest.raises(ConfigurationError):
            BurstyArrival(
                RandomStream(1, "a"),
                profile=[
                    RatePeriod(0.0, 10.0, 0.01),
                    RatePeriod(11.0, 24.0, 0.01),
                ],
            )

    def test_rate_lookup_by_time_of_day(self):
        process = BurstyArrival(RandomStream(1, "a"))
        assert process.rate_at(8 * HOUR) == pytest.approx(0.037)
        assert process.rate_at(12 * HOUR) == pytest.approx(0.005)
        assert process.rate_at(17 * HOUR) == pytest.approx(0.027)
        assert process.rate_at(2 * HOUR) == pytest.approx(0.0015)
        # Second day wraps.
        assert process.rate_at(DAY + 8 * HOUR) == pytest.approx(0.037)

    def test_burst_hours_produce_more_arrivals(self):
        process = BurstyArrival(RandomStream(9, "a"))

        def count_in_window(start, duration):
            clock = start
            count = 0
            while True:
                clock += process.next_interarrival(clock)
                if clock >= start + duration:
                    return count
                count += 1

        burst = count_in_window(7 * HOUR, 2 * HOUR)
        night = count_in_window(1 * HOUR, 2 * HOUR)
        assert burst > 4 * night

    def test_interarrival_positive_and_consistent(self):
        process = BurstyArrival(RandomStream(4, "a"))
        clock = 0.0
        for __ in range(2000):
            gap = process.next_interarrival(clock)
            assert gap > 0
            clock += gap
        # Roughly four simulated days for ~3456 expected arrivals.
        assert clock == pytest.approx(2000 / 0.01, rel=0.25)

    def test_eighty_percent_of_load_in_bursts(self):
        """The paper: 80% of a day's queries fall in the two bursts."""
        process = BurstyArrival(RandomStream(11, "a"))
        clock = 0.0
        in_burst = 0
        total = 0
        while clock < 10 * DAY:
            clock += process.next_interarrival(clock)
            hour = (clock % DAY) / HOUR
            total += 1
            if 7 <= hour < 10 or 16 <= hour < 19:
                in_burst += 1
        assert in_burst / total == pytest.approx(0.8, abs=0.04)

    def test_paper_profile_constant(self):
        assert len(PAPER_DAY_PROFILE) == 5
