"""Population sharding: planning, seeding and serial ≡ pooled goldens."""

import pytest

from repro.errors import SimulationError
from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import (
    RunOutcome,
    merge_shards,
    plan_shards,
    run_sharded,
)
from repro.sim.rand import spawn_seed

#: Small but non-trivial fleet: enough clients for four uneven shards,
#: short horizon so the whole module stays in the tier-1 budget.
FLEET_CONFIG = SimulationConfig(num_clients=10, horizon_hours=0.1)


def fleet_fingerprint(fleet):
    """Everything a headline report reads, as one comparable tuple."""
    return (
        fleet.shards,
        fleet.num_clients,
        fleet.hit_ratio,
        fleet.response_time,
        fleet.error_rate,
        fleet.summary.total_queries,
        fleet.events_processed,
        fleet.requests_served,
        fleet.raw_bytes,
        fleet.goodput_bytes,
        fleet.uplink_utilization,
        fleet.downlink_utilization,
        sorted(fleet.event_counts.items()),
        tuple(sorted(c.client_id for c in fleet.summary.clients)),
    )


class TestPlanning:
    def test_even_split(self):
        plans = plan_shards(FLEET_CONFIG.replaced(num_clients=8), 4)
        assert [plan.config.num_clients for plan in plans] == [2, 2, 2, 2]
        assert [plan.client_base for plan in plans] == [0, 2, 4, 6]

    def test_uneven_split_front_loads_remainder(self):
        plans = plan_shards(FLEET_CONFIG, 4)
        assert [plan.config.num_clients for plan in plans] == [3, 3, 2, 2]
        assert [plan.client_base for plan in plans] == [0, 3, 6, 8]
        assert sum(plan.config.num_clients for plan in plans) == 10

    def test_shard_seeds_ride_spawn_hierarchy(self):
        plans = plan_shards(FLEET_CONFIG, 3)
        seeds = [plan.config.seed for plan in plans]
        assert seeds == [
            spawn_seed(FLEET_CONFIG.seed, f"shard:{i}/3") for i in range(3)
        ]
        assert len(set(seeds)) == 3
        # Only num_clients and seed change; every workload parameter is
        # shared, so cells model the same population.
        for plan in plans:
            assert plan.config.replaced(
                num_clients=FLEET_CONFIG.num_clients,
                seed=FLEET_CONFIG.seed,
            ) == FLEET_CONFIG

    def test_rejects_degenerate_splits(self):
        with pytest.raises(SimulationError):
            plan_shards(FLEET_CONFIG, 0)
        with pytest.raises(SimulationError):
            plan_shards(FLEET_CONFIG, 11)

    def test_single_shard_keeps_population_but_reseeds(self):
        (plan,) = plan_shards(FLEET_CONFIG, 1)
        assert plan.config.num_clients == 10
        assert plan.config.seed == spawn_seed(FLEET_CONFIG.seed, "shard:0/1")


class TestShardedExecution:
    def test_serial_equals_pooled(self):
        """The tentpole golden: worker count never changes a byte."""
        serial = run_sharded(FLEET_CONFIG, shards=4, jobs=1)
        pooled = run_sharded(FLEET_CONFIG, shards=4, jobs=4)
        assert fleet_fingerprint(serial) == fleet_fingerprint(pooled)

    def test_client_ids_relabelled_globally(self):
        fleet = run_sharded(FLEET_CONFIG, shards=4, jobs=1)
        assert sorted(c.client_id for c in fleet.summary.clients) == list(
            range(10)
        )

    def test_fleet_totals_are_shard_sums(self):
        fleet = run_sharded(FLEET_CONFIG, shards=2, jobs=1)
        assert fleet.events_processed == sum(
            result.events_processed for result in fleet.per_shard
        )
        assert fleet.summary.total_queries == sum(
            result.summary.total_queries for result in fleet.per_shard
        )
        assert fleet.raw_bytes == sum(
            result.raw_bytes for result in fleet.per_shard
        )
        assert fleet.events_processed > 0
        assert fleet.summary.total_queries > 0

    def test_failed_shard_aborts_merge(self):
        plans = plan_shards(FLEET_CONFIG, 2)
        outcomes = [
            RunOutcome(
                index=0,
                dims={"shard": 0},
                label=plans[0].config.label(),
                elapsed_seconds=0.0,
                error="Traceback: boom",
            ),
        ]
        with pytest.raises(SimulationError, match="boom"):
            merge_shards(plans[:1], outcomes, FLEET_CONFIG)
