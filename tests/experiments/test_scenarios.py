"""Scenario registry: spec validation, planning, golden determinism.

The scenario layer's contract mirrors the parallel executor's: the
(scenario, horizon, base seed, replications, warm-up, confidence)
tuple fully determines the result envelope — worker count, completion
order and wall clock are unobservable.  These tests lock that down on
tiny in-line scenarios, plus the spec validation surface and the CLI.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ScenarioError, StatisticsError
from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import ParallelExecutor, execute_descriptor
from repro.experiments.scenarios import (
    METRICS,
    ReplicationPlan,
    Scenario,
    collect_outcomes,
    get_scenario,
    load_toml,
    run_scenario,
    scenario_names,
)
from repro.sim.rand import replication_seed

#: Small horizon keeping replicated grids affordable; 2 clients halve
#: the per-run cost again.  Warm-up is zero because a 0.15 h horizon
#: holds a single time-series bucket.
TINY = {
    "experiment_id": "tiny",
    "base": {"num_clients": 2, "update_probability": 0.1},
    "sweep": [
        {"name": "granularity", "values": ["OC", "HC"]},
    ],
    "replications": 2,
    "warmup_fraction": 0.0,
}
TINY_HORIZON_HOURS = 0.15


def tiny_scenario(**overrides):
    spec = {**TINY, **overrides}
    return Scenario.from_dict("tiny", spec)


def envelope_bytes(result):
    """Canonical byte serialisation of a scenario result envelope."""
    return json.dumps(result.envelope(), sort_keys=False).encode("utf-8")


class TestSpecValidation:
    def test_registered_names(self):
        names = scenario_names()
        assert "exp1-granularity" in names
        assert "exp7-bursts" in names
        assert "tournament" in names
        assert len(names) == 11

    def test_unknown_scenario(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("exp99-nope")

    def test_unknown_spec_key(self):
        with pytest.raises(ScenarioError, match="unknown spec keys"):
            tiny_scenario(warm_up=0.1)

    def test_unknown_config_field(self):
        with pytest.raises(ScenarioError, match="unknown SimulationConfig"):
            tiny_scenario(base={"granurality": "HC"})

    def test_reserved_field_in_base(self):
        with pytest.raises(ScenarioError, match="reserved field"):
            tiny_scenario(base={"seed": 1})

    def test_reserved_field_in_sweep(self):
        with pytest.raises(ScenarioError, match="reserved field"):
            tiny_scenario(
                sweep=[{"name": "horizon_hours", "values": [1.0, 2.0]}]
            )

    def test_empty_sweep(self):
        with pytest.raises(ScenarioError, match="sweeps no dimensions"):
            tiny_scenario(sweep=[])

    def test_empty_dimension_values(self):
        with pytest.raises(ScenarioError, match="sweeps no values"):
            tiny_scenario(sweep=[{"name": "granularity", "values": []}])

    def test_duplicate_dimension_value(self):
        with pytest.raises(ScenarioError, match="repeats a value"):
            tiny_scenario(
                sweep=[{"name": "granularity", "values": ["HC", "HC"]}]
            )

    def test_duplicate_dimension(self):
        with pytest.raises(ScenarioError, match="repeats dimension"):
            tiny_scenario(
                sweep=[
                    {"name": "granularity", "values": ["OC"]},
                    {"name": "granularity", "values": ["HC"]},
                ]
            )

    def test_dims_order_unknown_name(self):
        with pytest.raises(ScenarioError, match="dims_order"):
            tiny_scenario(dims_order=["nonexistent"])

    def test_const_dim_clash(self):
        with pytest.raises(ScenarioError, match="clashes"):
            tiny_scenario(const_dims={"granularity": "HC"})

    def test_bad_warmup(self):
        with pytest.raises(ScenarioError, match="warm-up"):
            tiny_scenario(warmup_fraction=1.0)

    def test_bad_replications(self):
        with pytest.raises(ScenarioError, match="replications"):
            tiny_scenario(replications=0)

    def test_bad_scale_fraction(self):
        with pytest.raises(ScenarioError, match="scale fraction"):
            tiny_scenario(scaled_fields={"disconnection_hours": 1.5})

    def test_malformed_replications(self):
        with pytest.raises(ScenarioError, match="malformed"):
            tiny_scenario(replications="many")


class TestExpansion:
    def test_cells_cartesian_order(self):
        scenario = Scenario.from_dict("grid", {
            "experiment_id": "grid",
            "sweep": [
                {"name": "heat", "values": ["SH", "CSH"]},
                {"name": "granularity", "values": ["OC", "HC"]},
            ],
            "dims_order": ["granularity", "heat"],
        })
        cells = scenario.cells()
        # Outer dimension first, inner fastest; dims_order controls the
        # reported dict order without touching expansion order.
        assert [c.dims_dict() for c in cells] == [
            {"granularity": "OC", "heat": "SH"},
            {"granularity": "HC", "heat": "SH"},
            {"granularity": "OC", "heat": "CSH"},
            {"granularity": "HC", "heat": "CSH"},
        ]

    def test_cell_key_is_order_insensitive(self):
        scenario = tiny_scenario()
        key = scenario.cells()[0].key()
        assert "granularity='OC'" in key

    def test_build_runs_full_configs(self):
        runs = tiny_scenario().build_runs(1.0, seed=7)
        assert len(runs) == 2
        dims, config = runs[0]
        assert dims == {"granularity": "OC"}
        assert config == SimulationConfig(
            granularity="OC",
            num_clients=2,
            update_probability=0.1,
            horizon_hours=1.0,
            seed=7,
        )

    def test_scaled_fields_cap_at_horizon_fraction(self):
        scenario = get_scenario("exp6-durations")
        runs = scenario.build_runs(2.0, seed=42)
        for dims, config in runs:
            assert config.disconnection_hours == min(
                dims["duration_hours"], 0.8 * 2.0
            )
            # The reported label keeps the paper's nominal duration.
            assert dims["duration_hours"] in (1.0, 4.0, 7.0, 10.0)

    def test_registered_scenarios_expand_to_valid_configs(self):
        for name in scenario_names():
            for dims, config in get_scenario(name).build_runs(1.0):
                config.validate()
                assert dims


class TestTomlRoundTrip:
    def test_load_register_and_run_list(self, tmp_path):
        path = tmp_path / "scenarios.toml"
        path.write_text(
            """
[toml-tiny]
title = "TOML round trip"
experiment_id = "tiny"
replications = 3
warmup_fraction = 0.25

[toml-tiny.base]
num_clients = 2
update_probability = 0.1

[[toml-tiny.sweep]]
name = "granularity"
values = ["OC", "HC"]
"""
        )
        scenarios = load_toml(str(path))
        assert list(scenarios) == ["toml-tiny"]
        loaded = scenarios["toml-tiny"]
        assert loaded.replications == 3
        assert loaded.warmup_fraction == 0.25
        # The TOML spec and the equivalent dict spec agree exactly.
        runs_toml = loaded.build_runs(1.0, seed=5)
        runs_dict = tiny_scenario().build_runs(1.0, seed=5)
        assert [c for __, c in runs_toml] == [c for __, c in runs_dict]

    def test_invalid_toml_raises_scenario_error(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[unterminated\n")
        with pytest.raises(ScenarioError, match="invalid TOML"):
            load_toml(str(path))

    def test_invalid_spec_in_toml_raises(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[bad]\ntitle = 'no sweep'\n")
        with pytest.raises(ScenarioError, match="sweeps no dimensions"):
            load_toml(str(path))


class TestReplicationPlan:
    def test_expansion_order_and_seeds(self):
        plan = ReplicationPlan(tiny_scenario(), replications=3, seed=42)
        descriptors = plan.descriptors()
        assert len(descriptors) == 6
        # Cells outer, replications inner; every cell of one
        # replication shares a seed (common random numbers), and the
        # seeds are the documented derivation.
        for index, descriptor in enumerate(descriptors):
            replication = index % 3
            assert descriptor.index == index
            assert descriptor.dims["replication"] == replication
            assert descriptor.config.seed == replication_seed(
                42, replication
            )
        assert descriptors[0].config.seed == descriptors[3].config.seed
        assert descriptors[0].config.seed != descriptors[1].config.seed

    def test_plan_rejects_bad_replications(self):
        with pytest.raises(ValueError):
            ReplicationPlan(tiny_scenario(), replications=0)

    def test_default_replications_from_scenario(self):
        plan = ReplicationPlan(tiny_scenario())
        assert plan.replications == 2


class TestGoldenDeterminism:
    """The envelope is a pure function of the scenario parameters."""

    def test_serial_matches_jobs_4(self):
        scenario = tiny_scenario()
        serial = run_scenario(
            scenario, horizon_hours=TINY_HORIZON_HOURS, seed=11, jobs=1
        )
        pooled = run_scenario(
            scenario, horizon_hours=TINY_HORIZON_HOURS, seed=11, jobs=4
        )
        assert envelope_bytes(serial) == envelope_bytes(pooled)
        assert not serial.failures

    def test_out_of_declaration_order_identical(self):
        """Executing the plan's runs in reverse order and re-collecting
        produces the identical envelope: the plan, not the scheduler,
        owns the structure."""
        scenario = tiny_scenario()
        plan = ReplicationPlan(
            scenario, horizon_hours=TINY_HORIZON_HOURS, seed=11
        )
        descriptors = plan.descriptors()
        in_order = ParallelExecutor(jobs=1).run("tiny", descriptors)
        reversed_outcomes = [
            execute_descriptor(d) for d in reversed(descriptors)
        ]
        a = collect_outcomes(plan, in_order)
        b = collect_outcomes(plan, reversed_outcomes)
        assert envelope_bytes(a) == envelope_bytes(b)

    def test_envelope_json_stable(self):
        scenario = tiny_scenario(sweep=[
            {"name": "granularity", "values": ["HC"]},
        ])
        result = run_scenario(
            scenario, horizon_hours=TINY_HORIZON_HOURS, seed=3
        )
        envelope = result.envelope()
        assert json.loads(result.to_json()) == envelope
        record = envelope["records"][0]
        for metric in METRICS:
            assert metric in record
            assert f"{metric}_half_width" in record

    def test_missing_outcomes_rejected(self):
        plan = ReplicationPlan(
            tiny_scenario(), horizon_hours=TINY_HORIZON_HOURS
        )
        outcomes = ParallelExecutor(jobs=1).run(
            "tiny", plan.descriptors()[:-1]
        )
        with pytest.raises(ValueError, match="outcomes"):
            collect_outcomes(plan, outcomes)


class TestStatisticalSmoke:
    @pytest.mark.slow
    def test_ci_shrinks_with_replications(self):
        """Half-widths shrink roughly like 1/sqrt(n) from 5 to 20
        replications.  The exact ratio is seed-dependent (the t critical
        value falls too), so the bounds are loose: the 20-rep interval
        must be materially tighter and not absurdly so."""
        scenario = Scenario.from_dict("shrink", {
            "experiment_id": "shrink",
            "base": {"num_clients": 2, "update_probability": 0.1},
            "sweep": [{"name": "granularity", "values": ["HC"]}],
            "warmup_fraction": 0.0,
        })
        five = run_scenario(
            scenario, replications=5, horizon_hours=0.3, seed=42
        )
        twenty = run_scenario(
            scenario, replications=20, horizon_hours=0.3, seed=42
        )
        wide = five.cells[0].stats["hit_ratio"]
        narrow = twenty.cells[0].stats["hit_ratio"]
        assert wide.half_width > 0.0
        ratio = narrow.half_width / wide.half_width
        # sqrt(5/20) = 0.5; t_crit(19)/t_crit(4) ~ 0.75 shrinks it more.
        assert 0.1 < ratio < 0.9
        # The replicated means agree within the wider interval.
        assert abs(narrow.mean - wide.mean) <= wide.half_width

    def test_warmup_consuming_horizon_raises(self):
        with pytest.raises(StatisticsError, match="warm-up"):
            run_scenario(
                tiny_scenario(),
                horizon_hours=TINY_HORIZON_HOURS,
                warmup_fraction=1.0,
            )

    def test_empty_measurement_window_raises(self):
        """A 0.15 h horizon is a single half-hour bucket, so any
        non-zero warm-up empties the window — a clean error, not NaNs."""
        with pytest.raises(StatisticsError, match="measurement window"):
            run_scenario(
                tiny_scenario(),
                replications=1,
                horizon_hours=TINY_HORIZON_HOURS,
                warmup_fraction=0.1,
            )

    def test_single_replication_zero_width(self):
        result = run_scenario(
            tiny_scenario(),
            replications=1,
            horizon_hours=TINY_HORIZON_HOURS,
        )
        for cell in result.cells:
            for metric in METRICS:
                assert cell.stats[metric].half_width == 0.0
                assert cell.stats[metric].n == 1


class TestCli:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "exp1-granularity" in out
        assert "exp6-client-counts" in out

    def test_scenario_run_with_envelope(self, capsys, tmp_path):
        out_path = tmp_path / "envelope.json"
        code = main([
            "scenario", "run", "exp4-cyclic",
            "--replications", "2",
            "--hours", str(TINY_HORIZON_HOURS),
            "--warmup", "0.0",
            "--quiet",
            "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "±" in out
        envelope = json.loads(out_path.read_text())
        assert envelope["metadata"]["scenario"] == "exp4-cyclic"
        assert len(envelope["records"]) == 4
        assert not envelope["failures"]

    def test_scenario_run_from_toml_spec(self, capsys, tmp_path):
        spec = tmp_path / "extra.toml"
        spec.write_text(
            """
[cli-tiny]
experiment_id = "tiny"
warmup_fraction = 0.0

[cli-tiny.base]
num_clients = 2

[[cli-tiny.sweep]]
name = "granularity"
values = ["HC"]
"""
        )
        code = main([
            "scenario", "run", "cli-tiny",
            "--spec", str(spec),
            "--replications", "1",
            "--hours", str(TINY_HORIZON_HOURS),
            "--quiet",
        ])
        assert code == 0

    def test_scenario_run_unknown_name(self, capsys):
        assert main(["scenario", "run", "exp99-nope", "--quiet"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenario_run_bad_warmup(self, capsys):
        code = main([
            "scenario", "run", "exp4-cyclic",
            "--warmup", "1.0", "--quiet",
        ])
        assert code == 2
        assert "warm-up" in capsys.readouterr().err
