"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "#1 (Fig 2)" in out


def test_list_policies(capsys):
    assert main(["list-policies"]) == 0
    out = capsys.readouterr().out
    assert "ewma" in out
    assert "lru" in out


def test_run_short_simulation(capsys):
    code = main(
        [
            "run",
            "--granularity",
            "AC",
            "--hours",
            "0.3",
            "--clients",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hit ratio" in out
    assert "response time" in out


def test_run_with_trace_and_summarize(capsys, tmp_path):
    trace_path = str(tmp_path / "run.jsonl")
    code = main(
        [
            "run",
            "--hours",
            "0.2",
            "--clients",
            "2",
            "--trace",
            trace_path,
            "--profile",
            "--staleness-timeline",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "trace         :" in out
    assert "wall-clock profile:" in out
    assert "staleness timeline" in out

    assert main(["trace", "summarize", trace_path]) == 0
    summary_out = capsys.readouterr().out
    assert "QueryComplete" in summary_out
    assert "CacheAccess" in summary_out
    # The export and the summary agree on the event total.
    events_line = next(
        line for line in summary_out.splitlines()
        if line.startswith("events")
    )
    total = int(events_line.split(":")[1])
    assert f"trace         : {total} events" in out


def test_trace_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_run_rejects_bad_granularity():
    with pytest.raises(SystemExit):
        main(["run", "--granularity", "ZZ"])


def test_experiment_requires_valid_number():
    with pytest.raises(SystemExit):
        main(["experiment", "9", "--hours", "0.1"])


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_experiment_four_smoke(capsys):
    """One full experiment command at a tiny horizon."""
    assert main(["experiment", "4", "--hours", "0.2", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "Figure 6" in out
    assert "ewma-0.5" in out


def test_experiment_six_smoke(capsys):
    assert main(["experiment", "6", "--hours", "0.2", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "disc-err" in out


def test_experiment_jobs_flag_matches_serial(capsys):
    """--jobs N must be invisible in the rendered output."""
    assert main(["experiment", "4", "--hours", "0.2", "--quiet",
                 "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert main(["experiment", "4", "--hours", "0.2", "--quiet",
                 "--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert parallel_out == serial_out
    assert "Figure 5" in parallel_out
