"""Parallel execution engine: golden equivalence and isolation tests.

The pool's contract is that worker count and completion order are
unobservable in the results: ``execute(..., jobs=N)`` must produce
byte-identical rows to the serial path for every experiment driver.
These tests lock that down on reduced-horizon exp1 and exp5 sweeps,
plus the out-of-order-completion and worker-crash-isolation cases the
contract implies.
"""

import io
import pickle

import pytest

from repro.experiments import exp1_granularity, exp5_coherence, exp7_faults
from repro.experiments.config import SimulationConfig
from repro.experiments.framework import execute
from repro.experiments.parallel import (
    JOBS_ENV_VAR,
    ParallelExecutor,
    build_descriptors,
    config_key,
    execute_descriptor,
    resolve_jobs,
)

#: Small horizon keeping the grids affordable (exp1 is 32 runs, exp5 27).
EQUIVALENCE_HORIZON_HOURS = 0.15


def row_bytes(table):
    """Canonical byte serialisation of a table's simulation outputs.

    ``elapsed_seconds`` is wall-clock, not a simulation output, so it is
    excluded; everything the paper's figures are built from is included.
    """
    parts = []
    for row in table.rows:
        parts.append(
            repr(
                (
                    sorted(row.dims.items()),
                    row.hit_ratio,
                    row.response_time,
                    row.error_rate,
                    row.queries,
                    row.disconnected_error_rate,
                    row.drops,
                    row.retries,
                    row.timeouts,
                    row.degraded,
                    sorted(row.event_counts.items()),
                )
            )
        )
    return "\n".join(parts).encode("utf-8")


class TestGoldenEquivalence:
    """jobs=4 and jobs=1 must agree bitwise on real experiment sweeps."""

    def test_exp1_parallel_matches_serial(self):
        runs = exp1_granularity.build_runs(
            horizon_hours=EQUIVALENCE_HORIZON_HOURS
        )
        serial = execute("exp1", "t", runs, jobs=1)
        parallel = execute("exp1", "t", runs, jobs=4)
        assert row_bytes(serial) == row_bytes(parallel)
        assert serial.rows == parallel.rows
        assert not serial.failures and not parallel.failures

    def test_exp5_parallel_matches_serial(self):
        runs = exp5_coherence.build_runs(
            horizon_hours=EQUIVALENCE_HORIZON_HOURS
        )
        serial = execute("exp5", "t", runs, jobs=1)
        parallel = execute("exp5", "t", runs, jobs=4)
        assert row_bytes(serial) == row_bytes(parallel)
        assert serial.rows == parallel.rows
        # The instrumentation spine must be as deterministic as the
        # metrics it feeds: identical per-type event totals regardless
        # of worker count.
        merged = serial.merged_event_counts()
        assert merged == parallel.merged_event_counts()
        assert merged["QueryComplete"] == sum(
            row.queries for row in serial.rows
        )

    def test_exp7_parallel_matches_serial(self):
        """Fault draws must replay identically across worker processes.

        Uses aggressive knobs (20% loss, 10 s timeout) so the fault and
        recovery paths genuinely fire within the reduced horizon, then
        checks the drop/retry/timeout/degraded counters bitwise.
        """
        runs = [
            (
                {"granularity": g, "retry_budget": budget},
                SimulationConfig(
                    granularity=g,
                    loss_rate=0.2,
                    request_timeout_seconds=10.0,
                    retry_budget=budget,
                    backoff_base_seconds=2.0,
                    horizon_hours=EQUIVALENCE_HORIZON_HOURS,
                ),
            )
            for g in ("AC", "OC", "HC")
            for budget in (0, 2)
        ]
        serial = execute("exp7", "t", runs, jobs=1)
        parallel = execute("exp7", "t", runs, jobs=4)
        assert row_bytes(serial) == row_bytes(parallel)
        assert serial.rows == parallel.rows
        assert not serial.failures and not parallel.failures
        # The sweep must actually have exercised the fault machinery.
        assert sum(row.drops for row in serial.rows) > 0
        assert sum(row.retries for row in serial.rows) > 0
        assert sum(row.timeouts for row in serial.rows) > 0

    def test_exp7_driver_entrypoint_matches_serial(self):
        serial = exp7_faults.run_bursts(
            horizon_hours=EQUIVALENCE_HORIZON_HOURS, jobs=1
        )
        parallel = exp7_faults.run_bursts(
            horizon_hours=EQUIVALENCE_HORIZON_HOURS, jobs=2
        )
        assert row_bytes(serial) == row_bytes(parallel)
        assert serial.rows == parallel.rows

    def test_driver_entrypoint_accepts_jobs(self):
        table = exp5_coherence.run(
            horizon_hours=EQUIVALENCE_HORIZON_HOURS, jobs=2
        )
        reference = exp5_coherence.run(
            horizon_hours=EQUIVALENCE_HORIZON_HOURS, jobs=1
        )
        assert table.rows == reference.rows


class TestOutOfOrderCompletion:
    """Fast runs finish first; declared order must come out regardless."""

    def test_results_keep_declaration_order(self):
        # Run 0 simulates ~25x more time than run 1, so with two workers
        # run 1 completes long before run 0 does.
        runs = [
            ({"which": "slow"}, SimulationConfig(horizon_hours=2.5)),
            ({"which": "fast"}, SimulationConfig(horizon_hours=0.1)),
        ]
        log = io.StringIO()
        executor = ParallelExecutor(jobs=2, progress=True, stream=log)
        outcomes = executor.run("order", build_descriptors(runs))
        assert [o.dims["which"] for o in outcomes] == ["slow", "fast"]
        assert [o.index for o in outcomes] == [0, 1]
        # The progress log records completion order: the fast run is
        # reported as the first completion despite being declared last.
        first_line = log.getvalue().splitlines()[0]
        assert "run 1/2" in first_line

    def test_serial_path_used_for_single_run(self):
        runs = [({"which": "only"}, SimulationConfig(horizon_hours=0.1))]
        executor = ParallelExecutor(jobs=8)
        outcomes = executor.run("single", build_descriptors(runs))
        assert len(outcomes) == 1 and outcomes[0].ok


class TestCrashIsolation:
    """A run that raises must not take the sweep down with it."""

    @staticmethod
    def runs_with_crash():
        # An unknown replacement spec passes config validation but
        # raises ReplacementError when the simulation is wired up —
        # i.e. inside the worker.
        return [
            ({"slot": 0}, SimulationConfig(horizon_hours=0.1)),
            ({"slot": 1}, SimulationConfig(replacement="no-such-policy",
                                           horizon_hours=0.1)),
            ({"slot": 2}, SimulationConfig(granularity="AC",
                                           horizon_hours=0.1)),
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_surfaces_without_killing_sweep(self, jobs):
        table = execute("crash", "t", self.runs_with_crash(), jobs=jobs)
        assert [row.dims["slot"] for row in table.rows] == [0, 2]
        assert len(table.failures) == 1
        failure = table.failures[0]
        assert failure.index == 1
        assert "no-such-policy" in failure.label
        assert "ReplacementError" in failure.traceback

    def test_serial_and_parallel_agree_on_failures(self):
        serial = execute("crash", "t", self.runs_with_crash(), jobs=1)
        parallel = execute("crash", "t", self.runs_with_crash(), jobs=2)
        assert serial.rows == parallel.rows
        assert [f.index for f in serial.failures] == [
            f.index for f in parallel.failures
        ]


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs(None) == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)


class TestRunDescriptors:
    def test_descriptor_is_picklable(self):
        runs = exp1_granularity.build_runs(horizon_hours=1.0)
        descriptors = build_descriptors(runs)
        clone = pickle.loads(pickle.dumps(descriptors[5]))
        assert clone == descriptors[5]
        assert clone.config == descriptors[5].config

    def test_indices_follow_declaration_order(self):
        runs = exp1_granularity.build_runs(horizon_hours=1.0)
        descriptors = build_descriptors(runs)
        assert [d.index for d in descriptors] == list(range(len(runs)))

    def test_execute_descriptor_records_timing(self):
        descriptor = build_descriptors(
            [({"k": 1}, SimulationConfig(horizon_hours=0.1))]
        )[0]
        outcome = execute_descriptor(descriptor)
        assert outcome.ok
        assert outcome.elapsed_seconds > 0.0


class TestSeedDecorrelation:
    """Content-keyed seed spawning: opt-in, order-invariant."""

    def test_default_preserves_config_seeds(self):
        runs = exp5_coherence.build_runs(horizon_hours=1.0, seed=42)
        descriptors = build_descriptors(runs)
        assert all(d.config.seed == 42 for d in descriptors)

    def test_decorrelated_runs_get_distinct_seeds(self):
        runs = exp5_coherence.build_runs(horizon_hours=1.0, seed=42)
        descriptors = build_descriptors(runs, decorrelate_seeds=True)
        seeds = {d.config.seed for d in descriptors}
        assert len(seeds) == len(descriptors)

    def test_reordering_never_changes_a_configs_seed(self):
        runs = exp5_coherence.build_runs(horizon_hours=1.0, seed=42)
        forward = build_descriptors(runs, decorrelate_seeds=True)
        backward = build_descriptors(
            list(reversed(runs)), decorrelate_seeds=True
        )
        by_key_fwd = {config_key(d.config): d.config.seed for d in forward}
        by_key_bwd = {config_key(d.config): d.config.seed for d in backward}
        assert by_key_fwd == by_key_bwd

    def test_config_key_ignores_seed(self):
        a = SimulationConfig(horizon_hours=1.0, seed=1)
        b = SimulationConfig(horizon_hours=1.0, seed=2)
        c = SimulationConfig(horizon_hours=2.0, seed=1)
        assert config_key(a) == config_key(b)
        assert config_key(a) != config_key(c)

    def test_decorrelated_parallel_matches_serial(self):
        runs = [
            ({"g": g}, SimulationConfig(granularity=g, horizon_hours=0.15))
            for g in ("AC", "OC", "HC")
        ]
        serial = execute("dec", "t", runs, jobs=1, decorrelate_seeds=True)
        parallel = execute("dec", "t", runs, jobs=2, decorrelate_seeds=True)
        assert serial.rows == parallel.rows
        # And decorrelation really changed the draws vs the CRN default.
        crn = execute("dec", "t", runs, jobs=1)
        assert row_bytes(crn) != row_bytes(serial)
