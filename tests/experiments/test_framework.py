"""Unit tests for the experiment framework, drivers and reports."""

import pytest

from repro.experiments import (
    exp1_granularity,
    exp2_replacement_ro,
    exp3_replacement_rw,
    exp4_adaptivity,
    exp5_coherence,
    exp6_disconnect,
    report,
)
from repro.experiments.framework import (
    ExperimentRow,
    ExperimentTable,
    FAST_HORIZON_HOURS,
    FULL_HORIZON_HOURS,
    default_horizon_hours,
)
from repro.experiments.tables import render_table1, table1_rows


def make_table():
    rows = [
        ExperimentRow({"g": "AC", "q": "AQ"}, 0.5, 1.0, 0.01, 100),
        ExperimentRow({"g": "OC", "q": "AQ"}, 0.6, 2.0, 0.02, 100),
        ExperimentRow({"g": "AC", "q": "NQ"}, 0.4, 3.0, 0.03, 100),
    ]
    return ExperimentTable("t", "test table", rows)


class TestExperimentTable:
    def test_filter(self):
        table = make_table()
        assert len(table.filter(q="AQ").rows) == 2
        assert len(table.filter(g="AC", q="NQ").rows) == 1

    def test_series(self):
        table = make_table()
        points = table.series("g", "hit_ratio", q="AQ")
        assert points == [("AC", 0.5), ("OC", 0.6)]

    def test_value_unique(self):
        table = make_table()
        assert table.value("response_time", g="OC", q="AQ") == 2.0
        with pytest.raises(ValueError):
            table.value("hit_ratio", g="AC")

    def test_dimension_values_preserve_order(self):
        assert make_table().dimension_values("g") == ["AC", "OC"]


class TestDefaultHorizon:
    def test_fast_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert default_horizon_hours() == FAST_HORIZON_HOURS

    def test_full_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_horizon_hours() == FULL_HORIZON_HOURS


class TestRunSpecs:
    """The drivers must enumerate exactly the paper's sweeps."""

    def test_exp1_covers_full_grid(self):
        runs = exp1_granularity.build_runs(horizon_hours=1.0)
        assert len(runs) == 4 * 2 * 2 * 2
        labels = {tuple(sorted(d.items())) for d, __ in runs}
        assert len(labels) == len(runs)

    def test_exp2_policies_and_single_client(self):
        runs = exp2_replacement_ro.build_runs(horizon_hours=1.0)
        assert len(runs) == 6 * 2 * 2 * 2
        for __, config in runs:
            assert config.num_clients == 1
            assert config.update_probability == 0.0
            assert config.granularity == "HC"

    def test_exp3_is_exp2_with_writes(self):
        runs = exp3_replacement_rw.build_runs(horizon_hours=1.0)
        for __, config in runs:
            assert config.num_clients == 10
            assert config.update_probability == 0.1

    def test_exp4_change_rates(self):
        runs = exp4_adaptivity.build_change_rate_runs(horizon_hours=1.0)
        assert len(runs) == 4 * 3
        rates = {config.csh_change_every for __, config in runs}
        assert rates == {300, 500, 700}

    def test_exp4_cyclic(self):
        runs = exp4_adaptivity.build_cyclic_runs(horizon_hours=1.0)
        assert len(runs) == 4
        assert all(config.heat == "cyclic" for __, config in runs)

    def test_exp5_grid(self):
        runs = exp5_coherence.build_runs(horizon_hours=1.0)
        assert len(runs) == 3 * 3 * 3
        betas = {config.beta for __, config in runs}
        assert betas == {-1.0, 0.0, 1.0}

    def test_exp6_durations_scaled_to_short_horizon(self):
        runs = exp6_disconnect.build_duration_runs(horizon_hours=8.0)
        for dims, config in runs:
            assert config.disconnection_hours <= 8.0
            assert config.disconnected_clients == 5
            # Labels keep the paper's D values.
            assert dims["duration_hours"] in (1.0, 4.0, 7.0, 10.0)

    def test_exp6_client_count_sweep(self):
        runs = exp6_disconnect.build_client_count_runs(horizon_hours=8.0)
        counts = {config.disconnected_clients for __, config in runs}
        assert counts == {1, 3, 5, 7, 9}


class TestReports:
    def test_render_rows(self):
        text = report.render_rows(make_table(), ["g", "q"])
        assert "test table" in text
        assert "AC" in text
        assert "50.00%" in text

    def test_render_matrix(self):
        text = report.render_matrix(
            make_table(), "g", "q", "hit_ratio"
        )
        assert "AC" in text and "OC" in text
        assert "-" in text  # OC/NQ cell is missing

    def test_summarize_best(self):
        best = report.summarize_best(make_table(), "q", "hit_ratio")
        assert dict((k, row.dims["g"]) for k, row in best) == {
            "AQ": "OC",
            "NQ": "AC",
        }


class TestTable1:
    def test_rows_cover_six_experiments(self):
        rows = table1_rows()
        assert len(rows) == 6
        assert rows[0]["experiment"].startswith("#1")

    def test_render_mentions_key_values(self):
        text = render_table1()
        assert "ewma-0.5" in text
        assert "NC, AC, OC, HC" in text
        assert "0.1, 0.3, 0.5" in text
