"""Statistics layer: t critical values, CIs, warm-up edge cases."""

import math

import pytest

from repro.errors import StatisticsError
from repro.experiments.scenarios.stats import (
    MetricStats,
    batch_means_ci,
    regularized_incomplete_beta,
    replication_ci,
    t_cdf,
    t_critical,
    warmup_window,
)


class TestIncompleteBeta:
    def test_boundaries(self):
        assert regularized_incomplete_beta(2.0, 0.5, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 0.5, 1.0) == 1.0

    def test_symmetric_midpoint(self):
        # I_{1/2}(a, a) = 1/2 for any a.
        for a in (0.5, 1.0, 3.0, 10.0):
            assert regularized_incomplete_beta(a, a, 0.5) == pytest.approx(
                0.5, abs=1e-10
            )

    def test_monotone_in_x(self):
        values = [
            regularized_incomplete_beta(2.5, 0.5, x)
            for x in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert values == sorted(values)


class TestStudentT:
    def test_cdf_symmetry(self):
        assert t_cdf(0.0, 5) == 0.5
        assert t_cdf(1.7, 5) + t_cdf(-1.7, 5) == pytest.approx(1.0)

    def test_cdf_rejects_bad_df(self):
        with pytest.raises(StatisticsError):
            t_cdf(1.0, 0)

    def test_critical_values_match_tables(self):
        """Standard table values, the cross-check that the pure-Python
        beta/bisection path reproduces scipy.stats.t.ppf."""
        assert t_critical(1, 0.95) == pytest.approx(12.7062, abs=1e-3)
        assert t_critical(4, 0.95) == pytest.approx(2.7764, abs=1e-3)
        assert t_critical(9, 0.95) == pytest.approx(2.2622, abs=1e-3)
        assert t_critical(9, 0.99) == pytest.approx(3.2498, abs=1e-3)
        assert t_critical(29, 0.95) == pytest.approx(2.0452, abs=1e-3)
        # Large df converges to the normal quantile 1.95996.
        assert t_critical(10_000, 0.95) == pytest.approx(1.9602, abs=1e-3)

    def test_critical_rejects_bad_confidence(self):
        with pytest.raises(StatisticsError):
            t_critical(4, 0.0)
        with pytest.raises(StatisticsError):
            t_critical(4, 1.0)

    def test_critical_is_deterministic(self):
        assert t_critical(7, 0.95) == t_critical(7, 0.95)


class TestReplicationCI:
    def test_zero_samples_raise(self):
        with pytest.raises(StatisticsError):
            replication_ci([])

    def test_single_sample_degenerate_interval(self):
        stats = replication_ci([0.42])
        assert stats == MetricStats(
            mean=0.42, half_width=0.0, n=1, std=0.0, confidence=0.95
        )

    def test_known_half_width(self):
        # mean 3, sample std 1, n=5 -> hw = t(4, .95) / sqrt(5).
        stats = replication_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        expected = t_critical(4, 0.95) * math.sqrt(2.5) / math.sqrt(5)
        assert stats.mean == 3.0
        assert stats.half_width == pytest.approx(expected)
        assert stats.low == pytest.approx(3.0 - expected)
        assert stats.high == pytest.approx(3.0 + expected)

    def test_identical_samples_zero_width(self):
        stats = replication_ci([7.0] * 10)
        assert stats.mean == 7.0
        assert stats.half_width == 0.0

    def test_formatted(self):
        assert replication_ci([1.0, 3.0]).formatted(2) == "2.00 ± 12.71"


class TestBatchMeansCI:
    def test_single_batch_raises(self):
        with pytest.raises(StatisticsError):
            batch_means_ci([1.0, 2.0, 3.0], batches=1)

    def test_too_few_samples_raise(self):
        with pytest.raises(StatisticsError):
            batch_means_ci([1.0, 2.0], batches=3)

    def test_remainder_dropped_from_front(self):
        # 7 samples, 3 batches -> size 2, the first sample is dropped.
        stats = batch_means_ci(
            [99.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0], batches=3
        )
        assert stats.mean == 2.0
        assert stats.n == 3

    def test_constant_series_zero_width(self):
        stats = batch_means_ci([5.0] * 40, batches=4)
        assert stats.mean == 5.0
        assert stats.half_width == 0.0


class TestWarmupWindow:
    def test_window_bounds(self):
        assert warmup_window(3600.0, 0.25) == (900.0, 3600.0)
        assert warmup_window(3600.0, 0.0) == (0.0, 3600.0)

    def test_full_warmup_raises(self):
        with pytest.raises(StatisticsError):
            warmup_window(3600.0, 1.0)

    def test_over_full_warmup_raises(self):
        with pytest.raises(StatisticsError):
            warmup_window(3600.0, 1.5)

    def test_negative_warmup_raises(self):
        with pytest.raises(StatisticsError):
            warmup_window(3600.0, -0.1)

    def test_nonpositive_horizon_raises(self):
        with pytest.raises(StatisticsError):
            warmup_window(0.0, 0.1)
