"""Unit tests for SimulationConfig validation and helpers."""

import pytest

from repro._units import HOUR
from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig


class TestValidation:
    def test_defaults_are_valid(self):
        SimulationConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("granularity", "XX"),
            ("query_kind", "ZQ"),
            ("arrival", "weekly"),
            ("heat", "volcanic"),
            ("update_probability", 1.5),
            ("update_probability", -0.1),
            ("num_clients", 0),
            ("num_objects", 1),
            ("selectivity", 0),
            ("selectivity", 99999),
            ("horizon_hours", 0.0),
            ("arrival_rate", 0.0),
            ("wireless_bps", 0),
            ("server_buffer_objects", 0),
            ("client_cache_objects", 0),
            ("client_buffer_objects", 0),
            ("disconnected_clients", 11),
        ],
    )
    def test_invalid_value_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**{field: value})

    def test_disconnection_requires_duration(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(disconnected_clients=3)

    def test_disconnection_must_fit_horizon(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                disconnected_clients=3,
                disconnection_hours=10.0,
                horizon_hours=5.0,
            )

    def test_valid_disconnection(self):
        config = SimulationConfig(
            disconnected_clients=3, disconnection_hours=2.0
        )
        assert config.disconnection_seconds == pytest.approx(2 * HOUR)


class TestHelpers:
    def test_horizon_seconds(self):
        assert SimulationConfig(
            horizon_hours=2.0
        ).horizon_seconds == pytest.approx(7200.0)

    def test_replaced_returns_validated_copy(self):
        base = SimulationConfig()
        changed = base.replaced(granularity="OC")
        assert changed.granularity == "OC"
        assert base.granularity == "HC"
        with pytest.raises(ConfigurationError):
            base.replaced(granularity="nope")

    def test_label_mentions_key_dimensions(self):
        label = SimulationConfig(
            granularity="AC",
            replacement="lru",
            disconnected_clients=3,
            disconnection_hours=5.0,
        ).label()
        assert "AC" in label
        assert "lru" in label
        assert "V=3" in label

    def test_table_rows_cover_every_field(self):
        config = SimulationConfig()
        rows = dict(config.as_table_rows())
        assert rows["granularity"] == "HC"
        assert "wireless_bps" in rows


class TestExtensionKnobs:
    def test_page_granularity_accepted(self):
        config = SimulationConfig(granularity="PC", objects_per_page=8)
        assert config.objects_per_page == 8

    def test_objects_per_page_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(objects_per_page=0)

    def test_coherence_mode_validated(self):
        SimulationConfig(coherence="invalidation-report")
        with pytest.raises(ConfigurationError):
            SimulationConfig(coherence="magic")

    def test_ir_interval_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(ir_interval_seconds=0.0)

    def test_trailer_threshold_optional(self):
        config = SimulationConfig(trailer_drop_queue_threshold=3)
        assert config.trailer_drop_queue_threshold == 3
        assert SimulationConfig().trailer_drop_queue_threshold is None
