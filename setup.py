"""Legacy setup shim.

Kept so ``pip install -e . --no-use-pep517`` works in offline environments
that lack the ``wheel`` package (PEP 660 editable installs need it).
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
