"""The Experiment #3 timeout heuristic, evaluated.

The paper observes that under bursty arrivals "the results will be
queued up at the downstream channel" and proposes a timeout heuristic:
terminate the delivery of prefetched items when the queue backs up
("We will report more on the effect of this heuristic in the future").
This benchmark is that report: with the heuristic enabled, HC sheds
prefetch trailers during bursts, cutting NQ response times under bursty
arrivals while barely moving the hit ratio.
"""

from conftest import horizon
from repro import SimulationConfig
from repro.experiments.runner import Simulation


def _run(threshold):
    config = SimulationConfig(
        granularity="HC",
        query_kind="NQ",
        arrival="bursty",
        trailer_drop_queue_threshold=threshold,
        horizon_hours=horizon(12.0),
    )
    simulation = Simulation(config)
    result = simulation.run()
    return result, simulation.server.trailers_dropped


def test_timeout_heuristic_sheds_burst_load(benchmark):
    def run():
        return {"off": _run(None), "on": _run(2)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, (result, dropped) in results.items():
        print(
            f"heuristic {label:>3}: resp={result.response_time:8.3f}s "
            f"hit={result.hit_ratio:7.2%} trailers_dropped={dropped}"
        )

    without, __ = results["off"]
    with_heuristic, dropped = results["on"]
    assert dropped > 0
    assert with_heuristic.response_time < without.response_time
    # Shedding prefetches costs only a little hit ratio.
    assert with_heuristic.hit_ratio > without.hit_ratio - 0.08
