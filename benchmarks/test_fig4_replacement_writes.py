"""Figure 4 — replacement policies with writes (Experiment #3).

Same sweep as Figure 3 under U = 0.1 with 10 clients.  Shapes: hit
ratios drop versus the read-only case (expired items must be
re-fetched), and Bursty responses exceed Poisson's because results
queue on the shared downlink during bursts.
"""

from conftest import horizon
from repro import SimulationConfig, run_simulation
from repro.experiments import exp3_replacement_rw, report


def test_fig4_replacement_writes(figure_bench):
    hours = horizon(4.0)
    table = figure_bench(
        lambda: exp3_replacement_rw.run(horizon_hours=hours)
    )
    print()
    print(report.render_rows(
        table,
        ["heat", "query_kind", "arrival", "policy"],
        metrics=("hit_ratio", "response_time"),
    ))

    # Writes depress hit ratios: compare the EWMA cell against a
    # read-only twin run at the same horizon.
    with_writes = table.value(
        "hit_ratio",
        policy="ewma-0.5", heat="SH", query_kind="AQ", arrival="poisson",
    )
    read_only = run_simulation(
        SimulationConfig(
            granularity="HC",
            replacement="ewma-0.5",
            update_probability=0.0,
            horizon_hours=hours,
        )
    ).hit_ratio
    assert with_writes < read_only

    # Bursty responses exceed Poisson's, most visibly for NQ.  Only
    # assertable once the horizon reaches the first 07:00 burst; shorter
    # smoke horizons sit entirely in the overnight lull.
    if hours >= 10.0:
        for policy in exp3_replacement_rw.POLICIES:
            poisson = table.value(
                "response_time",
                policy=policy, heat="SH", query_kind="NQ",
                arrival="poisson",
            )
            bursty = table.value(
                "response_time",
                policy=policy, heat="SH", query_kind="NQ",
                arrival="bursty",
            )
            assert bursty > poisson

    # Every policy still clears a sane hit-ratio band under writes.
    for row in table.filter(query_kind="AQ", arrival="poisson").rows:
        assert 0.15 < row.hit_ratio < 0.9
