"""Table 1 — parameter settings of the experiments.

Regenerates the paper's Table 1 from the experiment drivers and checks
it lists exactly the sweeps the code runs.
"""

from repro.experiments.tables import render_table1, table1_rows


def test_table1_regeneration(benchmark):
    text = benchmark(render_table1)
    print()
    print(text)

    rows = table1_rows()
    assert len(rows) == 6
    # Experiment #1 sweeps the four granularities.
    assert rows[0]["G"] == "NC, AC, OC, HC"
    # Experiments #2/#3 sweep the six replacement policies.
    for index in (1, 2):
        for policy in ("lru", "lru-3", "lrd", "mean", "window-10",
                       "ewma-0.5"):
            assert policy in rows[index]["R_disk"]
    # Experiment #5 sweeps U and beta.
    assert "0.1, 0.3, 0.5" in rows[4]["U"]
    assert "-1.0" in rows[4]["U"]
    # Experiment #6 sweeps D and V.
    assert "D " in rows[5]["D/V"]
    assert "V " in rows[5]["D/V"]
