"""Figure 6 — the cyclic access pattern (Experiment #4, second half).

LRU, LRU-3, LRD and EWMA-0.5 under the LRU-k stress pattern: a fixed
hot set plus a sequential scan that cycles over the whole database.
The paper's shapes: LRU collapses (the scan flushes its cache), LRU-3
wins big (single-touch scan items are filtered out), and EWMA-0.5 lands
close to LRU-3 and clearly above LRD despite not being designed for the
pattern.
"""

from conftest import horizon
from repro.experiments import exp4_adaptivity, report


def test_fig6_cyclic(figure_bench):
    hours = horizon(8.0)
    table = figure_bench(
        lambda: exp4_adaptivity.run_cyclic(horizon_hours=hours)
    )
    print()
    print(report.render_rows(
        table, ["policy"], metrics=("hit_ratio", "response_time")
    ))

    def hit(policy):
        return table.value("hit_ratio", policy=policy)

    # LRU suffers; LRU-3 is clearly better.
    assert hit("lru-3") > hit("lru") + 0.02

    # EWMA-0.5 beats LRD and approaches LRU-3.
    assert hit("ewma-0.5") > hit("lrd")
    assert hit("ewma-0.5") > hit("lru")
    assert hit("ewma-0.5") > hit("lru-3") - 0.10

    # Response times order inversely with hit ratios.
    assert table.value("response_time", policy="lru") > table.value(
        "response_time", policy="lru-3"
    )
