"""Micro-benchmark: the event bus is affordable when instrumentation is off.

The refactor replaced inline counter mutations with bus emissions, so
the always-on dispatch path is now on every hot path.  This benchmark
bounds what that costs on Experiment #1's base configuration:

* the per-event *extra* cost of ``bus.emit`` over calling the metrics
  collector directly (the pre-refactor equivalent), extrapolated to the
  run's actual event volume, must stay under 5% of the run's wall
  clock;
* a guarded emit site whose event type has no subscriber must cost a
  dict probe, not an event construction.
"""

import time

from conftest import horizon
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_simulation
from repro.metrics.collectors import MetricsSink
from repro.obs.bus import EventBus
from repro.obs.events import CacheAccess, CacheEvict

#: Emissions for the micro timing loops (large enough to dwarf timer
#: resolution, small enough to keep the benchmark quick).
MICRO_EMITS = 200_000
#: Overhead budget relative to the run's wall clock.
BUDGET = 0.05


def _time(fn, repeats=3):
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_bus_off_overhead_under_budget():
    # 1. One real run of the base configuration, instrumentation off.
    config = SimulationConfig(horizon_hours=horizon(0.5))
    run_started = time.perf_counter()
    result = run_simulation(config)
    run_seconds = time.perf_counter() - run_started
    total_events = sum(result.event_counts.values())
    assert total_events > 0

    # 2. Per-event cost of the dispatch layer vs the direct call the
    #    old inline-counter code would have made.
    bus = EventBus()
    metrics = MetricsSink.install(bus).client(0)
    event = CacheAccess(
        time=1.0, client_id=0, key="oid", hit=True, error=False,
        answered=True, connected=True,
    )

    def via_bus():
        emit = bus.emit
        for __ in range(MICRO_EMITS):
            emit(event)

    def direct():
        record = metrics.record_access
        for __ in range(MICRO_EMITS):
            record(True, False, answered=True, connected=True, now=1.0)

    per_event_overhead = max(
        0.0, (_time(via_bus) - _time(direct)) / MICRO_EMITS
    )
    projected = per_event_overhead * total_events
    share = projected / run_seconds
    print(
        f"\nrun {run_seconds:.2f}s, {total_events} events, "
        f"dispatch overhead {per_event_overhead * 1e9:.0f} ns/event "
        f"-> {projected * 1e3:.1f} ms projected ({share:.2%} of run)"
    )
    assert share < BUDGET, (
        f"bus dispatch projects to {share:.2%} of the run's wall clock "
        f"(budget {BUDGET:.0%})"
    )


def test_guarded_emit_site_costs_a_probe_when_off():
    bus = EventBus()
    MetricsSink.install(bus)  # subscribes metric types, not CacheEvict

    def guard_loop():
        wants = bus.wants
        for __ in range(MICRO_EMITS):
            if wants(CacheEvict):  # pragma: no cover - never true here
                raise AssertionError("no subscriber expected")

    per_check = _time(guard_loop) / MICRO_EMITS
    print(f"\nwants() miss: {per_check * 1e9:.0f} ns/check")
    # A dict probe plus tuple truthiness; a healthy margin over any
    # plausible interpreter, but far below event construction cost.
    assert per_check < 2e-6


def test_invariant_checking_overhead_under_budget():
    """`--invariants` must stay within the obs overhead budget.

    Same extrapolation scheme as the bus benchmark: per-event cost of
    `InvariantEngine.feed` on the hottest event type, projected to the
    base run's real event volume, bounded by 5% of its wall clock.
    """
    from repro.analysis.invariants import InvariantEngine
    from repro.experiments.runner import Simulation

    config = SimulationConfig(horizon_hours=horizon(0.5))
    run_started = time.perf_counter()
    result = run_simulation(config)
    run_seconds = time.perf_counter() - run_started
    total_events = sum(result.event_counts.values())

    engine = InvariantEngine()
    event = CacheAccess(
        time=1.0, client_id=0, key="oid", hit=True, error=False,
        answered=True, connected=True,
    )

    def feed_loop():
        feed = engine.feed
        for __ in range(MICRO_EMITS):
            feed(event)

    per_event = _time(feed_loop) / MICRO_EMITS
    projected = per_event * total_events
    share = projected / run_seconds
    print(
        f"\nrun {run_seconds:.2f}s, {total_events} events, "
        f"invariant feed {per_event * 1e9:.0f} ns/event "
        f"-> {projected * 1e3:.1f} ms projected ({share:.2%} of run)"
    )
    assert share < BUDGET, (
        f"invariant checking projects to {share:.2%} of the run's wall "
        f"clock (budget {BUDGET:.0%})"
    )

    # Strictly zero-cost when off: no engine object, nothing subscribed.
    assert Simulation(config).invariant_engine is None
