"""Page caching: the conventional baseline the paper argues against.

Section 2: "database items within a page at a database server barely
exhibit any degree of locality [for mobile clients] ... the overhead of
transmitting a page over a low bandwidth wireless channel would be too
expensive to be justified."  This benchmark quantifies that claim: PC
transfers whole 4 KB pages per missed object over the 19.2 kbps channel,
saturating it, while the hit ratio *loses* to plain object caching
because page-mates waste cache capacity.
"""

from conftest import horizon
from repro import SimulationConfig, run_simulation


def test_page_caching_loses_to_object_caching(benchmark):
    hours = horizon(3.0)

    def run():
        return {
            granularity: run_simulation(
                SimulationConfig(
                    granularity=granularity, horizon_hours=hours
                )
            )
            for granularity in ("AC", "OC", "PC")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for granularity, result in results.items():
        print(
            f"{granularity}: hit={result.hit_ratio:7.2%} "
            f"resp={result.response_time:10.3f}s "
            f"down-util={result.downlink_utilization:6.2%}"
        )

    oc = results["OC"]
    pc = results["PC"]
    ac = results["AC"]

    # Page transfers overwhelm the wireless downlink...
    assert pc.response_time > 3 * oc.response_time
    assert pc.downlink_utilization > oc.downlink_utilization
    # ...without buying hits: page-mates squander cache capacity.
    assert pc.hit_ratio < oc.hit_ratio
    # And the paper's own granularities beat it comprehensively.
    assert ac.response_time < pc.response_time / 10
