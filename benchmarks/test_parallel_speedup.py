"""Smoke benchmark: the parallel executor actually scales.

Runs a reduced-horizon slice of Experiment #1 serially and with one
worker per core, checks the pool produces byte-identical rows, and
asserts a conservative speedup floor.  Skipped on single-core machines,
where a process pool can only add overhead.
"""

import os
import time

import pytest

from conftest import horizon
from repro.experiments import exp1_granularity
from repro.experiments.framework import execute

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs at least 2 cores",
)


def test_parallel_speedup_smoke():
    jobs = os.cpu_count() or 1
    runs = exp1_granularity.build_runs(horizon_hours=horizon(0.5))

    started = time.perf_counter()
    serial = execute("exp1", "speedup", runs, jobs=1)
    serial_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    parallel = execute("exp1", "speedup", runs, jobs=jobs)
    parallel_elapsed = time.perf_counter() - started

    assert serial.rows == parallel.rows
    speedup = serial_elapsed / parallel_elapsed
    print(
        f"\njobs={jobs}: serial {serial_elapsed:.1f}s, "
        f"parallel {parallel_elapsed:.1f}s, speedup {speedup:.2f}x"
    )
    # Conservative floor: spawn startup and result pickling eat into the
    # ideal jobs-fold speedup, but with >= 2 cores and 32 runs the pool
    # must still clearly win.
    floor = min(1.5, 0.5 * jobs)
    assert speedup >= floor, (
        f"parallel sweep only {speedup:.2f}x faster "
        f"(floor {floor:.2f}x with jobs={jobs})"
    )
