"""Coherence baselines: refresh-time vs invalidation reports.

The paper argues (Section 2) that broadcast invalidation reports — the
scheme of reference [2] — fit a mobile environment poorly: a client must
keep listening, and one missed report while disconnected invalidates its
whole cache.  The paper's lazy refresh-time scheme trades a bounded
amount of staleness for availability instead.  This benchmark implements
both and measures the trade:

* connected operation — IR delivers far fewer stale reads (errors) at a
  modest hit-ratio cost (invalidated entries miss);
* disconnected operation — IR's amnesia rule purges caches after missed
  reports, so its hit ratio falls well below refresh-time's while
  refresh-time keeps answering (with bounded staleness).
"""

from conftest import horizon
from repro import SimulationConfig
from repro.experiments.runner import Simulation


def _run(coherence, disconnected=False):
    hours = horizon(6.0)
    config = SimulationConfig(
        granularity="HC",
        coherence=coherence,
        horizon_hours=hours,
        disconnected_clients=5 if disconnected else 0,
        disconnection_hours=hours / 3 if disconnected else 0.0,
    )
    simulation = Simulation(config)
    result = simulation.run()
    purges = sum(
        client.invalidation.cache_purges
        for client in simulation.clients
        if client.invalidation is not None
    )
    return result, purges


def test_coherence_baseline_tradeoff(benchmark):
    def run():
        return {
            ("refresh-time", False): _run("refresh-time"),
            ("invalidation-report", False): _run("invalidation-report"),
            ("refresh-time", True): _run("refresh-time", True),
            ("invalidation-report", True): _run(
                "invalidation-report", True
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for (coherence, disconnected), (result, purges) in results.items():
        tag = "disc" if disconnected else "conn"
        print(
            f"{coherence:<20} [{tag}]: hit={result.hit_ratio:7.2%} "
            f"err={result.error_rate:7.2%} purges={purges}"
        )

    rt_conn, __ = results[("refresh-time", False)]
    ir_conn, __ = results[("invalidation-report", False)]
    rt_disc, __ = results[("refresh-time", True)]
    ir_disc, ir_purges = results[("invalidation-report", True)]

    # Connected: IR trades hits for freshness.
    assert ir_conn.error_rate < rt_conn.error_rate
    assert ir_conn.hit_ratio <= rt_conn.hit_ratio + 0.02

    # Disconnected: the amnesia rule actually fires and costs hits.
    assert ir_purges > 0
    assert ir_disc.hit_ratio < rt_disc.hit_ratio
    # Refresh-time keeps availability at the price of stale reads.
    assert rt_disc.error_rate > ir_disc.error_rate
