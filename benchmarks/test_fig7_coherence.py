"""Figure 7 — coherence versus update probability and beta (Exp #5).

Error rate, hit ratio and response time for AC/OC/HC across
U in {0.1, 0.3, 0.5} and beta in {-1, 0, 1}.  The paper's shapes:

* OC's error rates exceed AC's and HC's (any-attribute writes poison
  object-grained reads);
* HC's error rates sit at or below AC's (prefetch refreshes);
* errors grow with U and with beta;
* hit ratios grow with beta while response times fall.
"""

from conftest import horizon
from repro.experiments import exp5_coherence, report


def test_fig7_coherence(figure_bench):
    hours = horizon(4.0)
    table = figure_bench(
        lambda: exp5_coherence.run(horizon_hours=hours)
    )
    print()
    print(report.render_rows(
        table, ["beta", "update_probability", "granularity"]
    ))

    # OC errors highest, HC at or below AC, wherever object caching
    # actually functions (at beta = -1 with high U the refresh times are
    # so short OC's cache is effectively dead, almost every OC read is
    # served fresh, and its error rate collapses — see EXPERIMENTS.md).
    for beta in (0.0, 1.0):
        point = dict(beta=beta, update_probability=0.1)
        oc = table.value("error_rate", granularity="OC", **point)
        ac = table.value("error_rate", granularity="AC", **point)
        hc = table.value("error_rate", granularity="HC", **point)
        assert oc > ac
        assert oc > hc
        assert hc <= ac + 0.02

    # The U direction is regime-dependent (exposure vs expiry; see the
    # Figure 7 note in EXPERIMENTS.md), so it is printed rather than
    # asserted here; the pinned-seed integration suite checks the
    # exposure-regime instance.  What must always hold: more writes can
    # only destroy hits, never create them.
    for granularity in exp5_coherence.GRANULARITIES:
        hits = [
            table.value(
                "hit_ratio",
                granularity=granularity,
                beta=0.0,
                update_probability=u,
            )
            for u in exp5_coherence.UPDATE_PROBABILITIES
        ]
        assert hits == sorted(hits, reverse=True)

    # Larger beta: more hits, more errors, faster responses (U = 0.1).
    for granularity in exp5_coherence.GRANULARITIES:
        def metric(name, beta):
            return table.value(
                name,
                granularity=granularity,
                beta=beta,
                update_probability=0.1,
            )

        assert metric("hit_ratio", 1.0) >= metric("hit_ratio", -1.0)
        assert metric("error_rate", 1.0) >= metric("error_rate", -1.0)
        assert metric("response_time", 1.0) <= metric(
            "response_time", -1.0
        ) * 1.05
