"""Figure 8 — error rates during disconnection (Experiment #6).

Figures 8a-8c: the error rate among the reads disconnected clients
serve locally grows with the disconnection duration D, for AC, OC and
HC alike.  Figure 8d: the overall error rate climbs slowly as more
clients are disconnected (V), because every extra disconnected client
adds stale local reads.
"""

from conftest import horizon
from repro.experiments import exp6_disconnect, report


def test_fig8a_c_duration_sweep(figure_bench):
    # Disconnection windows keep the paper's true hour-scale durations,
    # so the horizon must be long enough to fit them with room for
    # connected operation; 16 h is the shortest verified geometry.
    hours = horizon(16.0)
    table = figure_bench(
        lambda: exp6_disconnect.run_durations(horizon_hours=hours)
    )
    print()
    print(report.render_rows(
        table,
        ["granularity", "duration_hours"],
        metrics=("disconnected_error_rate", "error_rate", "hit_ratio"),
    ))

    for granularity in exp6_disconnect.GRANULARITIES:
        errors = [
            table.value(
                "disconnected_error_rate",
                granularity=granularity,
                duration_hours=d,
            )
            for d in exp6_disconnect.DURATIONS_HOURS
        ]
        # Strong growth from the shortest to the longest disconnection.
        assert errors[0] < errors[-1]
        # And roughly monotone along the sweep (noise tolerance).
        for earlier, later in zip(errors, errors[2:], strict=False):
            assert earlier <= later + 0.05


def test_fig8d_client_count_sweep(figure_bench):
    # 5 h windows inside 16 h keep the disconnected fraction close to
    # the paper's geometry; shorter horizons make V=9 remove most of
    # the writer pool and the slow-growth shape inverts.
    hours = horizon(16.0)
    table = figure_bench(
        lambda: exp6_disconnect.run_client_counts(horizon_hours=hours)
    )
    print()
    print(report.render_rows(
        table,
        ["granularity", "disconnected_clients"],
        metrics=("error_rate", "hit_ratio"),
    ))

    for granularity in exp6_disconnect.GRANULARITIES:
        errors = [
            table.value(
                "error_rate",
                granularity=granularity,
                disconnected_clients=v,
            )
            for v in exp6_disconnect.CLIENT_COUNTS
        ]
        # More disconnected clients -> more stale local reads overall;
        # the paper calls the increase "relatively slow", so the
        # tolerance is loose but the end-to-end direction must hold.
        assert errors[-1] >= errors[0] - 0.01
