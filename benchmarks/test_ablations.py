"""Ablations of the design choices DESIGN.md Section 6 calls out.

Each benchmark flips one mechanism and regenerates a small comparison,
showing what the mechanism buys:

* **prefetch threshold floor** — the literal ``mu - 2 sigma`` rule is
  vacuous under skew (negative threshold admits everything); the
  uniform-share floor keeps HC's transfers near AC's;
* **split prefetch delivery** — trailing prefetches keeps HC's response
  time at AC level; inline delivery pays for every prefetched byte;
* **attribute-entry overhead** — the cache-table cost of attribute
  granularity; without it AC's effective capacity is overstated;
* **young-key penalty** — duration schemes need it to stop cold
  insertions from squatting while honest hot estimates get evicted;
* **existent list** — suppressing retransmission of locally satisfied
  items cuts downlink bytes.
"""

from conftest import horizon
from repro import SimulationConfig
from repro.experiments.runner import Simulation, run_simulation

HOURS_FAST = 4.0


def _hours():
    return horizon(HOURS_FAST)


def test_ablation_prefetch_floor(benchmark):
    """Floored threshold must prefetch less and respond faster."""

    def run():
        floored = run_simulation(
            SimulationConfig(
                granularity="HC",
                prefetch_floor_at_uniform=True,
                horizon_hours=_hours(),
            )
        )
        literal = run_simulation(
            SimulationConfig(
                granularity="HC",
                prefetch_floor_at_uniform=False,
                horizon_hours=_hours(),
            )
        )
        return floored, literal

    floored, literal = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"floored : pf={floored.items_prefetched:7d} "
          f"resp={floored.response_time:6.3f}s hit={floored.hit_ratio:.2%}")
    print(f"literal : pf={literal.items_prefetched:7d} "
          f"resp={literal.response_time:6.3f}s hit={literal.hit_ratio:.2%}")
    assert floored.items_prefetched < literal.items_prefetched
    # More aggressive prefetching should at least not help responses.
    assert floored.response_time <= literal.response_time * 1.10


def test_ablation_split_delivery(benchmark):
    """Trailing prefetch delivery must beat inline delivery on response."""

    def run():
        split = run_simulation(
            SimulationConfig(
                granularity="HC",
                prefetch_split_delivery=True,
                horizon_hours=_hours(),
            )
        )
        inline = run_simulation(
            SimulationConfig(
                granularity="HC",
                prefetch_split_delivery=False,
                horizon_hours=_hours(),
            )
        )
        return split, inline

    split, inline = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"split  : resp={split.response_time:6.3f}s "
          f"hit={split.hit_ratio:.2%}")
    print(f"inline : resp={inline.response_time:6.3f}s "
          f"hit={inline.hit_ratio:.2%}")
    assert split.response_time < inline.response_time
    # Hit ratios stay comparable — delivery only changes timing.
    assert abs(split.hit_ratio - inline.hit_ratio) < 0.05


def test_ablation_attribute_entry_overhead(benchmark):
    """Zero cache-table overhead inflates AC's effective capacity."""

    def run():
        with_overhead = run_simulation(
            SimulationConfig(
                granularity="AC",
                attribute_entry_overhead_bytes=40,
                horizon_hours=_hours(),
            )
        )
        without = run_simulation(
            SimulationConfig(
                granularity="AC",
                attribute_entry_overhead_bytes=0,
                horizon_hours=_hours(),
            )
        )
        return with_overhead, without

    with_overhead, without = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(f"overhead=40B: hit={with_overhead.hit_ratio:.2%}")
    print(f"overhead=0B : hit={without.hit_ratio:.2%}")
    assert without.hit_ratio >= with_overhead.hit_ratio


def test_ablation_young_penalty(benchmark):
    """Without the young penalty, cold insertions squat in the cache."""

    def run_with_penalty(penalty):
        simulation = Simulation(
            SimulationConfig(
                granularity="HC",
                replacement="mean",
                update_probability=0.0,
                num_clients=1,
                horizon_hours=horizon(8.0),
            )
        )
        for client in simulation.clients:
            client.cache.policy.young_penalty = penalty
        return simulation.run()

    def run():
        return run_with_penalty(3.0), run_with_penalty(1.0)

    penalised, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"young_penalty=3: hit={penalised.hit_ratio:.2%}")
    print(f"young_penalty=1: hit={naive.hit_ratio:.2%}")
    assert penalised.hit_ratio > naive.hit_ratio


def test_ablation_existent_list(benchmark):
    """Existent/held lists stop the prefetcher from re-shipping items
    the client already holds, saving downlink bytes under HC."""
    from repro.client.mobile_client import MobileClient

    def run():
        results = {}
        original = MobileClient._probe
        for informed in (True, False):
            if not informed:
                def probe_uninformed(self, query, connected,
                                     _orig=original):
                    result = _orig(self, query, connected)
                    result.existent = []
                    result.held = []
                    return result

                MobileClient._probe = probe_uninformed
            try:
                simulation = Simulation(
                    SimulationConfig(
                        granularity="HC", horizon_hours=_hours()
                    )
                )
                simulation.run()
                results[informed] = simulation.network.bytes_downstream
            finally:
                MobileClient._probe = original
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"with existent/held lists    : {results[True]:>12,.0f} B down")
    print(f"without existent/held lists : {results[False]:>12,.0f} B down")
    assert results[True] < results[False]


def test_ablation_ewma_alpha_sensitivity(benchmark):
    """alpha trades adaptivity for stability; 0.5 is the paper's pick."""

    def run():
        return {
            alpha: run_simulation(
                SimulationConfig(
                    granularity="HC",
                    replacement=f"ewma-{alpha}",
                    heat="CSH",
                    csh_change_every=100,
                    update_probability=0.0,
                    num_clients=1,
                    horizon_hours=horizon(12.0),
                )
            )
            for alpha in (0.1, 0.5, 0.9)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for alpha, result in sorted(results.items()):
        print(f"ewma-{alpha}: hit={result.hit_ratio:.2%}")
    for result in results.values():
        assert 0.1 < result.hit_ratio < 0.95


def test_ablation_window_size(benchmark):
    """Window size trades memory for smoothing."""

    def run():
        return {
            window: run_simulation(
                SimulationConfig(
                    granularity="HC",
                    replacement=f"window-{window}",
                    update_probability=0.0,
                    num_clients=1,
                    horizon_hours=horizon(8.0),
                )
            )
            for window in (2, 10, 50)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for window, result in sorted(results.items()):
        print(f"window-{window}: hit={result.hit_ratio:.2%}")
    for result in results.values():
        assert 0.2 < result.hit_ratio < 0.95
