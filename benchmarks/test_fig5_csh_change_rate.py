"""Figure 5 — adaptivity versus the CSH change rate (Experiment #4).

LRU, LRU-3, LRD and EWMA-0.5 on the changing-skewed-heat pattern with
hot-set change rates of 300/500/700 queries.  The paper's finding:
recency-based schemes hold their own when the hot set changes fast,
while EWMA-0.5 pulls ahead once the change rate slows past 500.

A hot-set era lasts 8-19 *hours* of client time at these change rates,
so the crossover only materialises at the paper-scale horizon
(REPRO_FULL=1); the reduced run still regenerates the full grid and
checks coarse sanity.
"""

from conftest import full_scale, horizon
from repro.experiments import exp4_adaptivity, report


def test_fig5_change_rates(figure_bench):
    hours = horizon(12.0)
    table = figure_bench(
        lambda: exp4_adaptivity.run_change_rates(horizon_hours=hours)
    )
    print()
    print(report.render_rows(
        table, ["change_rate", "policy"],
        metrics=("hit_ratio", "response_time"),
    ))

    assert len(table.rows) == 12
    for row in table.rows:
        assert 0.1 < row.hit_ratio < 0.95
        assert row.response_time > 0

    # Faster change rates can only hurt (or leave unchanged) a policy's
    # hit ratio.
    for policy in exp4_adaptivity.POLICIES:
        fast = table.value("hit_ratio", policy=policy, change_rate=300)
        slow = table.value("hit_ratio", policy=policy, change_rate=700)
        assert fast <= slow + 0.05

    if full_scale():
        # The paper's crossover: EWMA-0.5 best at slow change rates.
        ewma = table.value(
            "hit_ratio", policy="ewma-0.5", change_rate=700
        )
        assert ewma >= table.value(
            "hit_ratio", policy="lru", change_rate=700
        )
        assert ewma >= table.value(
            "hit_ratio", policy="lrd", change_rate=700
        )
