"""Replicated-scenario benchmark: the registry at realistic scale.

Times one registered scenario run with several replications through the
full pipeline — plan expansion, parallel fan-out, warm-up truncation,
per-cell confidence intervals — and asserts the envelope's statistical
shape: every cell carries a full metric set, half-widths are finite and
non-negative, and cells differing only by replacement policy share a
replication count.  ``REPRO_FULL=1`` lifts the horizon to the paper's
scale.
"""

import os

from conftest import horizon
from repro.experiments.scenarios import METRICS, get_scenario, run_scenario

REPLICATIONS = 5 if os.environ.get("REPRO_FULL", "") == "1" else 3


def test_replicated_scenario_bench(benchmark):
    scenario = get_scenario("exp4-cyclic")

    def run():
        return run_scenario(
            scenario,
            replications=REPLICATIONS,
            horizon_hours=horizon(1.0),
            jobs=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells"] = len(result.cells)
    benchmark.extra_info["replications"] = REPLICATIONS

    assert not result.failures
    assert len(result.cells) == 4
    for cell in result.cells:
        assert cell.replications == REPLICATIONS
        for metric in METRICS:
            stats = cell.stats[metric]
            assert stats.n == REPLICATIONS
            assert stats.half_width >= 0.0
            assert stats.low <= stats.mean <= stats.high
    # Replications, not cells, drive the interval: at least one metric
    # in one cell must show genuine cross-replication variance.
    assert any(
        cell.stats[metric].half_width > 0.0
        for cell in result.cells
        for metric in METRICS
    )
