"""Figure 2 — caching granularity (Experiment #1).

Regenerates the full NC/AC/OC/HC x AQ/NQ x Poisson/Bursty x SH/CSH grid
and checks the paper's headline shapes:

* the no-caching base case is far worse than any storage-caching scheme;
* OC yields higher hit ratios than AC but *also* higher response times
  (blind prefetching over a 19.2 kbps channel);
* HC's response time lands near AC's while its hit ratio approaches OC's;
* CSH trails SH slightly;
* Bursty NQ is the congested corner (the paper's Figure 2h anomaly).
"""

from conftest import full_scale, horizon
from repro.experiments import exp1_granularity, report


def test_fig2_granularity(figure_bench):
    hours = horizon(3.0)
    table = figure_bench(
        lambda: exp1_granularity.run(horizon_hours=hours)
    )
    print()
    print(report.render_rows(
        table, ["query_kind", "arrival", "heat", "granularity"]
    ))

    base = dict(query_kind="AQ", arrival="poisson", heat="SH")
    nc = table.filter(granularity="NC", **base).rows[0]
    ac = table.filter(granularity="AC", **base).rows[0]
    oc = table.filter(granularity="OC", **base).rows[0]
    hc = table.filter(granularity="HC", **base).rows[0]

    # NC is far worse than any storage-caching scheme.
    for cached in (ac, oc, hc):
        assert nc.hit_ratio < cached.hit_ratio / 2
        assert nc.response_time > 2 * cached.response_time

    # OC: more hits than AC, but slower responses.
    assert oc.hit_ratio > ac.hit_ratio - 0.02
    assert oc.response_time > 1.5 * ac.response_time

    # HC: response near AC, far below OC.
    assert hc.response_time < (ac.response_time + oc.response_time) / 2
    assert hc.hit_ratio > ac.hit_ratio - 0.03

    if full_scale():
        # The crisper orderings need the 96 h horizon.
        assert oc.hit_ratio > ac.hit_ratio
        assert hc.hit_ratio > ac.hit_ratio
        assert hc.response_time < 1.3 * ac.response_time

    # CSH trails SH for the caching schemes (hit ratio).
    for granularity in ("AC", "OC", "HC"):
        sh = table.value(
            "hit_ratio",
            granularity=granularity,
            query_kind="AQ",
            arrival="poisson",
            heat="SH",
        )
        csh = table.value(
            "hit_ratio",
            granularity=granularity,
            query_kind="AQ",
            arrival="poisson",
            heat="CSH",
        )
        assert csh <= sh + 0.05

    # Bursty NQ congestion: responses exceed the Poisson NQ ones.  The
    # day profile's first burst starts at 07:00, so this only holds once
    # the horizon reaches it; shorter smoke horizons cover the overnight
    # lull where bursty arrivals are *sparser* than Poisson.
    if hours >= 10.0:
        for granularity in ("AC", "OC", "HC"):
            poisson_nq = table.value(
                "response_time",
                granularity=granularity,
                query_kind="NQ",
                arrival="poisson",
                heat="SH",
            )
            bursty_nq = table.value(
                "response_time",
                granularity=granularity,
                query_kind="NQ",
                arrival="bursty",
                heat="SH",
            )
            assert bursty_nq > poisson_nq
