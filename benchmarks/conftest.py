"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables/figures: it runs
the experiment sweep once inside the timed section (``pedantic`` with a
single round — the interesting number is the sweep's cost, not its
variance), prints the figure's rows, and asserts the qualitative shape
the paper reports.

Default horizons are reduced so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; set ``REPRO_FULL=1`` for the paper's 96 h horizon
(and the stricter shape assertions that only emerge at that scale).
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest  # noqa: E402


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker.

    The default addopts exclude the marker, keeping tier-1 runs fast;
    CI selects it explicitly with ``-m bench``.  The hook receives the
    whole session's items, so scope the marker to this directory —
    mixed invocations like ``pytest tests benchmarks`` must not drag
    unit tests into the bench tier.
    """
    root = Path(__file__).resolve().parent
    for item in items:
        if Path(item.fspath).is_relative_to(root):
            item.add_marker(pytest.mark.bench)


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


def horizon(fast_hours: float) -> float:
    return 96.0 if full_scale() else fast_hours


@pytest.fixture()
def figure_bench(benchmark, capsys):
    """Run a figure-regeneration callable once, timed, and print it."""

    def run(fn):
        table = benchmark.pedantic(fn, rounds=1, iterations=1)
        benchmark.extra_info["rows"] = len(table.rows)
        benchmark.extra_info["full_scale"] = full_scale()
        return table

    return run
