"""Figure 3 — replacement policies, read-only best case (Experiment #2).

One client, U = 0, HC granularity.  The paper's shapes: on SH the Mean
and EWMA-0.5 duration schemes capture more of the hot set than LRU/LRD;
on CSH the Mean scheme collapses (it never forgets) while EWMA-0.5
adapts best of the paper's schemes; NQ responses are about twice AQ's.
"""

from conftest import full_scale, horizon
from repro.experiments import exp2_replacement_ro, report


def test_fig3_replacement_readonly(figure_bench):
    hours = horizon(8.0)
    table = figure_bench(
        lambda: exp2_replacement_ro.run(horizon_hours=hours)
    )
    print()
    print(report.render_rows(
        table,
        ["heat", "query_kind", "arrival", "policy"],
        metrics=("hit_ratio", "response_time"),
    ))

    def hit(policy, heat="SH", kind="AQ"):
        return table.value(
            "hit_ratio",
            policy=policy,
            heat=heat,
            query_kind=kind,
            arrival="poisson",
        )

    # SH: the duration schemes (Mean/EWMA) beat LRU and LRD.
    assert max(hit("mean"), hit("ewma-0.5")) > hit("lru")
    assert max(hit("mean"), hit("ewma-0.5")) > hit("lrd")

    # NQ responses roughly double AQ's (selectivity doubles).
    for policy in exp2_replacement_ro.POLICIES:
        aq = table.value(
            "response_time",
            policy=policy, heat="SH", query_kind="AQ", arrival="poisson",
        )
        nq = table.value(
            "response_time",
            policy=policy, heat="SH", query_kind="NQ", arrival="poisson",
        )
        assert nq > 1.4 * aq

    if full_scale():
        # CSH era changes only bite at the 96 h horizon (an era is ~14 h
        # of client time at the default change rate).
        assert hit("mean", heat="CSH") < hit("lru", heat="CSH")
        assert hit("ewma-0.5", heat="CSH") > hit("lru", heat="CSH")
        assert hit("ewma-0.5", heat="CSH") > hit("lrd", heat="CSH")
        assert hit("ewma-0.5", heat="CSH") > hit("mean", heat="CSH")
