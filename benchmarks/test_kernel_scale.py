"""Kernel scale benchmark: the 1000-client acceptance gate for PR 7.

Measures the current kernel on the fault-injection fleet scenario at
``n=1000`` (best of three fresh-subprocess runs, same harness the
``scripts/kernel_bench.py`` trajectory uses) and holds it against the
frozen pre-overhaul baseline committed in ``BENCH_kernel.json``:

* a thousand-client run completes and serves real traffic;
* events/sec beats the old kernel — whose throughput is counted on the
  generous basis (everything its loop popped, dead entries included);
* end-to-end wallclock (setup + run) beats the old kernel outright,
  which is the margin the OID-sort caching adds on top of the run-phase
  win.

The baseline numbers were measured on the machine that committed
``BENCH_kernel.json``; on a very different machine the relative claims
still hold (both sides moved to the same hardware would shift
together), but the absolute floor may need the file regenerated with
``PYTHONPATH=src python scripts/kernel_bench.py``.
"""

import json
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_SCRIPTS = _ROOT / "scripts"
if str(_SCRIPTS) not in sys.path:
    sys.path.insert(0, str(_SCRIPTS))

import kernel_bench  # noqa: E402

RESULTS_PATH = _ROOT / "BENCH_kernel.json"

HEADLINE_CLIENTS = 1000


@pytest.fixture(scope="module")
def headline():
    """One best-of-three measurement shared by every assertion."""
    return kernel_bench.measure_in_subprocess(HEADLINE_CLIENTS)


@pytest.fixture(scope="module")
def committed():
    return json.loads(RESULTS_PATH.read_text())


def test_thousand_client_run_completes(headline):
    assert headline["num_clients"] == HEADLINE_CLIENTS
    assert headline["events"] > 10_000
    assert headline["requests_served"] > 1_000
    assert headline["peak_rss_kb"] > 0


def test_committed_pair_beats_pre_overhaul(committed):
    """The committed same-window A/B: new kernel > old kernel.

    Baseline and headline entry were measured back-to-back on one
    machine (their calibration scores agree), so this comparison is
    deterministic and noise-free — it IS the acceptance number.
    """
    baseline = committed["baseline"]
    entry = committed["entries"][-1]
    assert baseline["num_clients"] == HEADLINE_CLIENTS
    assert entry["num_clients"] == HEADLINE_CLIENTS
    assert entry["events_per_sec"] > baseline["events_per_sec"]
    # Same-window proof: calibration scores within 20% of each other.
    assert baseline["calibration_seconds"] == pytest.approx(
        committed["calibration_seconds"], rel=0.2
    )


def test_beats_pre_overhaul_events_per_sec(headline, committed):
    """The live kernel still beats the frozen pre-overhaul number.

    The frozen number came from a different moment (possibly a
    different machine), so scale it by the calibration ratio — how the
    measuring host then compares to this host now — before comparing.
    """
    baseline = committed["baseline"]
    speed_ratio = baseline["calibration_seconds"] / kernel_bench.calibrate()
    current = headline["events_per_sec"]
    floor = baseline["events_per_sec"] * speed_ratio
    print(
        f"\nevents/sec: current {current:,.0f} vs pre-overhaul "
        f"{baseline['events_per_sec']:,.0f} normalised to {floor:,.0f} "
        f"(speed ratio {speed_ratio:.2f}, {current / floor:.2f}x)"
    )
    assert current > floor, (
        f"lazy-cancellation kernel at {current:,.0f} events/sec does not "
        f"beat the pre-overhaul kernel's speed-normalised {floor:,.0f}"
    )


def test_beats_pre_overhaul_end_to_end(headline, committed):
    baseline = committed["baseline"]
    current = headline["setup_seconds"] + headline["run_seconds"]
    old = baseline["setup_seconds"] + baseline["run_seconds"]
    print(
        f"\nend-to-end: current {current:.2f}s vs "
        f"pre-overhaul {old:.2f}s ({old / current:.2f}x)"
    )
    assert current < old


def test_committed_trajectory_is_coherent(committed):
    """The committed file itself stays well-formed and self-consistent."""
    assert committed["schema"] == "kernel-bench/v1"
    sizes = [entry["num_clients"] for entry in committed["entries"]]
    assert sizes == sorted(sizes)
    assert sizes[-1] >= HEADLINE_CLIENTS
    for entry in committed["entries"]:
        assert entry["events"] > 0
        assert entry["run_seconds"] > 0
        assert entry["events_per_sec"] == pytest.approx(
            entry["events"] / entry["run_seconds"], rel=0.01
        )
    assert committed["clients_at_budget"] >= HEADLINE_CLIENTS
