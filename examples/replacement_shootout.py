#!/usr/bin/env python3
"""Replacement-policy shootout across access patterns.

Runs every registered replacement policy (the paper's six plus the
extension baselines CLOCK, FIFO and Random) against three heat
patterns — static 80/20 (SH), changing hot set (CSH) and the cyclic
LRU-k stress pattern — and prints a league table per pattern.

This is the paper's Experiments #2-#4 condensed into one script, plus
policies the paper only surveyed.

Run:  python examples/replacement_shootout.py [simulated-hours]
"""

import sys

from repro import SimulationConfig, run_simulation

POLICIES = [
    "lru",
    "lru-3",
    "lrd",
    "mean",
    "window-10",
    "ewma-0.5",
    "clock",
    "fifo",
    "random",
]

PATTERNS = ["SH", "CSH", "cyclic"]


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 6.0
    print(
        f"Replacement shootout: HC granularity, AQ/Poisson, U=0.1, "
        f"10 clients, {hours:g} simulated hours\n"
    )
    for pattern in PATTERNS:
        results = []
        for policy in POLICIES:
            result = run_simulation(
                SimulationConfig(
                    granularity="HC",
                    replacement=policy,
                    heat=pattern,
                    update_probability=0.1,
                    horizon_hours=hours,
                    seed=11,
                )
            )
            results.append((policy, result))
        results.sort(key=lambda pair: -pair[1].hit_ratio)
        print(f"=== {pattern} ===")
        print(f"{'policy':<12} {'hit':>8} {'resp(s)':>9} {'err':>8}")
        for policy, result in results:
            print(
                f"{policy:<12} {result.hit_ratio:8.2%} "
                f"{result.response_time:9.3f} {result.error_rate:8.2%}"
            )
        best = results[0][0]
        print(f"-> best on {pattern}: {best}\n")


if __name__ == "__main__":
    main()
