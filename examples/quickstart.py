#!/usr/bin/env python3
"""Quickstart: run one mobile-caching simulation and read the results.

Reproduces the paper's base setting in miniature: 10 mobile clients,
a 2000-object OODB server, two shared 19.2 Kbps wireless channels,
hybrid caching with EWMA-0.5 replacement, 10% update probability.

Run:  python examples/quickstart.py [simulated-hours]
"""

import sys

from repro import SimulationConfig, run_simulation


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 4.0

    config = SimulationConfig(
        granularity="HC",  # hybrid caching: the paper's sweet spot
        replacement="ewma-0.5",  # the paper's best adaptive policy
        query_kind="AQ",  # associative queries
        arrival="poisson",  # mean rate 0.01 queries/s per client
        heat="SH",  # 80/20 skewed heat, per-client hot sets
        update_probability=0.1,
        horizon_hours=hours,
        seed=7,
    )

    print(f"Simulating {hours:g} hours: {config.label()}")
    result = run_simulation(config)

    print()
    print(f"queries executed     : {result.summary.total_queries}")
    print(f"attribute accesses   : {result.summary.total_accesses}")
    print(f"cache hit ratio      : {result.hit_ratio:.2%}")
    print(f"mean response time   : {result.response_time:.3f} s")
    print(f"stale-read error rate: {result.error_rate:.2%}")
    print(f"uplink utilisation   : {result.uplink_utilization:.2%}")
    print(f"downlink utilisation : {result.downlink_utilization:.2%}")
    print(f"server buffer hits   : {result.server_buffer_hit_ratio:.2%}")

    low, high = result.summary.response_confidence_interval()
    print(f"response 95% CI      : [{low:.3f}, {high:.3f}] s")

    # Compare against the no-caching base case.
    baseline = run_simulation(config.replaced(granularity="NC"))
    speedup = baseline.response_time / result.response_time
    print()
    print(
        f"without storage caching (NC): hit {baseline.hit_ratio:.2%}, "
        f"response {baseline.response_time:.3f} s "
        f"-> storage caching is {speedup:.1f}x faster"
    )


if __name__ == "__main__":
    main()
