#!/usr/bin/env python3
"""Refresh times vs invalidation reports: the coherence trade-off.

The paper's lazy refresh-time scheme accepts a bounded amount of
staleness in exchange for working through disconnections; broadcast
invalidation reports (the scheme of the paper's reference [2]) keep
caches fresh but force a client that missed a report to purge its whole
cache.  This example runs both strategies, connected and with half the
clients disconnected, and prints the trade-off — plus the effect of the
IR broadcast period.

Run:  python examples/coherence_comparison.py [simulated-hours]
"""

import sys

from repro import SimulationConfig
from repro.experiments.runner import Simulation


def run(coherence, hours, disconnected=False, ir_interval=1000.0):
    config = SimulationConfig(
        granularity="HC",
        coherence=coherence,
        ir_interval_seconds=ir_interval,
        horizon_hours=hours,
        disconnected_clients=5 if disconnected else 0,
        disconnection_hours=hours / 3 if disconnected else 0.0,
        seed=17,
    )
    simulation = Simulation(config)
    result = simulation.run()
    purges = sum(
        client.invalidation.cache_purges
        for client in simulation.clients
        if client.invalidation is not None
    )
    broadcast_bytes = simulation.network.broadcast.bytes_carried
    return result, purges, broadcast_bytes


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 6.0
    print(f"Coherence strategies over {hours:g} simulated hours\n")

    print(f"{'strategy':<22} {'mode':<6} {'hit':>8} {'err':>8} "
          f"{'purges':>7} {'IR bytes':>10}")
    for disconnected in (False, True):
        mode = "disc" if disconnected else "conn"
        for coherence in ("refresh-time", "invalidation-report"):
            result, purges, bytes_ = run(coherence, hours, disconnected)
            print(
                f"{coherence:<22} {mode:<6} {result.hit_ratio:8.2%} "
                f"{result.error_rate:8.2%} {purges:7d} {bytes_:10,.0f}"
            )
    print()

    print("IR broadcast period sweep (connected):")
    print(f"{'interval(s)':>12} {'hit':>8} {'err':>8} {'IR bytes':>10}")
    for interval in (250.0, 1000.0, 4000.0):
        result, __, bytes_ = run(
            "invalidation-report", hours, ir_interval=interval
        )
        print(
            f"{interval:12.0f} {result.hit_ratio:8.2%} "
            f"{result.error_rate:8.2%} {bytes_:10,.0f}"
        )
    print()
    print("Longer periods save broadcast bandwidth but widen the window")
    print("of staleness between reports — and make the amnesia rule purge")
    print("sooner after any disconnection.")


if __name__ == "__main__":
    main()
