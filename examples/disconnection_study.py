#!/usr/bin/env python3
"""Disconnected operation: how stale do answers get?

The paper's Experiment #6 asks what happens when mobile clients keep
working from their local caches while disconnected.  This example
sweeps the disconnection duration for the three caching granularities
and reports the stale-read error rate and how many reads went entirely
unanswered (items never cached).

It also demonstrates the refresh-time lever: a larger beta keeps items
"valid" longer, which lifts hit ratios but raises the error rate — the
paper's freshness/performance trade-off in one table.

Run:  python examples/disconnection_study.py [simulated-hours]
"""

import sys

from repro import SimulationConfig
from repro.experiments.runner import Simulation


def run_with_details(config: SimulationConfig):
    simulation = Simulation(config)
    result = simulation.run()
    unanswered = sum(
        client.metrics.unanswered_accesses for client in simulation.clients
    )
    stale_served = sum(
        client.metrics.stale_served_accesses
        for client in simulation.clients
    )
    return result, unanswered, stale_served


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 12.0
    base = SimulationConfig(
        replacement="ewma-0.5",
        update_probability=0.1,
        horizon_hours=hours,
        seed=23,
    )

    print(f"Disconnection study ({hours:g} simulated hours, "
          "5 of 10 clients disconnected)\n")
    print(f"{'granularity':<12} {'disc(h)':>8} {'err':>8} {'hit':>8} "
          f"{'stale-served':>13} {'unanswered':>11}")
    for granularity in ("AC", "OC", "HC"):
        for disconnected_hours in (0.0, hours / 8, hours / 4):
            config = base.replaced(
                granularity=granularity,
                disconnected_clients=5 if disconnected_hours else 0,
                disconnection_hours=disconnected_hours,
            )
            result, unanswered, stale = run_with_details(config)
            print(
                f"{granularity:<12} {disconnected_hours:8.2f} "
                f"{result.error_rate:8.2%} {result.hit_ratio:8.2%} "
                f"{stale:13d} {unanswered:11d}"
            )
    print()

    print("The beta lever (HC, no disconnection): validity vs freshness")
    print(f"{'beta':>6} {'hit':>8} {'err':>8} {'resp(s)':>9}")
    for beta in (-1.0, 0.0, 1.0):
        config = base.replaced(granularity="HC", beta=beta)
        result, __, __ = run_with_details(config)
        print(
            f"{beta:6.1f} {result.hit_ratio:8.2%} "
            f"{result.error_rate:8.2%} {result.response_time:9.3f}"
        )


if __name__ == "__main__":
    main()
