#!/usr/bin/env python3
"""Watching replacement policies adapt to a hot-set change.

The paper's Experiment #4 compares policies on the changing-skewed-heat
pattern through aggregate hit ratios.  This example shows the *dynamics*
instead: the hit ratio over time, as terminal sparklines, for LRU, Mean
and EWMA-0.5 across CSH hot-set changes.  Mean never recovers after a
change (its estimates keep full history forever); EWMA's anticipated
estimates shed the stale hot set and climb back; LRU adapts instantly
but never reaches the duration schemes' steady-state level.

Run:  python examples/adaptation_timeline.py [simulated-hours]
"""

import sys

from repro import SimulationConfig
from repro._units import HOUR
from repro.workload.arrivals import DEFAULT_ARRIVAL_RATE
from repro.experiments.runner import Simulation

POLICIES = ("lru", "mean", "ewma-0.5")


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 48.0
    # A single read-only client makes the dynamics cleanest; the hot set
    # changes every `change_every` of its queries.
    change_every = 300
    print(
        f"CSH adaptation timelines ({hours:g} h, hot set re-picked every "
        f"{change_every} queries ≈ every "
        f"{change_every / DEFAULT_ARRIVAL_RATE / HOUR:.1f} h)\n"
    )
    for policy in POLICIES:
        simulation = Simulation(
            SimulationConfig(
                granularity="HC",
                replacement=policy,
                heat="CSH",
                csh_change_every=change_every,
                update_probability=0.0,
                num_clients=1,
                horizon_hours=hours,
                seed=31,
            )
        )
        result = simulation.run()
        series = result.summary.hit_series
        print(f"{policy:>10}  |{series.sparkline(width=64)}|  "
              f"overall {result.hit_ratio:.2%}")
    print()
    print("(each column is a slice of simulated time; bar height = hit "
          "ratio)")


if __name__ == "__main__":
    main()
