#!/usr/bin/env python3
"""The paper's motivating application: an Advanced Traveler Information
System (ATIS) browsed from a tourist's wireless portable.

This example exercises the *programming API* of the library rather than
the experiment harness: it defines the ATIS schema from Section 3.1
(Places to Stay / Places to Eat style classes), builds the client-side
cache table (the Remote/Cache surrogate hierarchy), and walks through
the paper's protocol by hand — probe the local cache, build an existent
list, fetch the rest from the server, cache the reply, and keep
answering queries from the local database after a disconnection.

Run:  python examples/atis_tourist.py
"""

from repro.core.granularity import CachingGranularity
from repro.core.replacement import create_policy
from repro.core.storage_cache import ClientStorageCache
from repro.core.surrogate import LocalDatabase
from repro.net.message import RequestMessage
from repro.net.network import Network
from repro.oodb.database import Database
from repro.oodb.objects import DBObject, OID
from repro.oodb.schema import AttributeDef, ClassDef, Schema
from repro.oodb.server import DatabaseServer
from repro.sim.environment import Environment


def build_atis_schema() -> Schema:
    """A compact version of Figure 1a's traveler-information schema."""
    places_to_stay = ClassDef(
        "PlacesToStay",
        [
            AttributeDef("name", size_bytes=40),
            AttributeDef("city", size_bytes=24),
            AttributeDef("vacancy", size_bytes=8),
            AttributeDef("rate", size_bytes=8),
            AttributeDef(
                "nearby_food",
                size_bytes=8,
                is_relationship=True,
                target_class="PlacesToEat",
            ),
        ],
    )
    places_to_eat = ClassDef(
        "PlacesToEat",
        [
            AttributeDef("name", size_bytes=40),
            AttributeDef("cuisine", size_bytes=16),
            AttributeDef("price_range", size_bytes=8),
        ],
    )
    return Schema([places_to_stay, places_to_eat])


def build_atis_database(schema: Schema) -> Database:
    database = Database(schema)
    stay = schema.class_def("PlacesToStay")
    eat = schema.class_def("PlacesToEat")
    hotels = [
        ("Harbour View", 1, 30, 120),
        ("Peak Lodge", 1, 0, 95),
        ("Kowloon Inn", 2, 12, 60),
        ("Island Suites", 2, 4, 210),
    ]
    for number, (name, city, vacancy, rate) in enumerate(hotels):
        database.add(
            DBObject(
                OID("PlacesToStay", number),
                stay,
                {
                    "name": hash(name) % 10_000,
                    "city": city,
                    "vacancy": vacancy,
                    "rate": rate,
                    "nearby_food": number % 2,
                },
            )
        )
    for number, (name, cuisine, price) in enumerate(
        [("Dim Sum House", 1, 2), ("Noodle Bar", 2, 1)]
    ):
        database.add(
            DBObject(
                OID("PlacesToEat", number),
                eat,
                {"name": hash(name) % 10_000, "cuisine": cuisine,
                 "price_range": price},
            )
        )
    return database


def main() -> None:
    env = Environment()
    schema = build_atis_schema()
    database = build_atis_database(schema)
    network = Network(env)
    server = DatabaseServer(env, database, network, buffer_capacity=4)

    # The tourist's portable: a small attribute-grained storage cache
    # fronted by the paper's Remote/Cache surrogate hierarchy.
    granularity = CachingGranularity.ATTRIBUTE
    cache = ClientStorageCache(
        capacity_bytes=2_048, policy=create_policy("ewma-0.5")
    )
    local = LocalDatabase(schema, cache, granularity)

    # --- Query 1 (connected): which hotels have vacancies? -------------
    # "select x.name, x.city from x in PlacesToStay where x.vacancy > 0"
    print("Q1: hotels with vacancies (everything is remote the first time)")
    wanted = ["name", "city", "vacancy"]
    qualifying = [
        oid
        for oid in database.oids("PlacesToStay")
        if database.get(oid).read("vacancy") > 0
    ]
    # Probe the cache table; nothing is cached yet, so all items go on
    # the needed list and the existent list stays empty.
    needed = {
        oid: tuple(
            a for a in wanted
            if local.read_attribute(oid, a, env.now) is None
        )
        for oid in qualifying
    }
    request = RequestMessage(
        client_id=0,
        query_id=1,
        granularity=granularity,
        needed=needed,
    )
    reply, __, service_time = server.serve(request)
    print(f"  request {request.size_bytes} B -> reply {reply.size_bytes} B"
          f" (server time {service_time * 1e3:.3f} ms)")
    for item in reply.items:
        local.ensure_surrogate(item.oid)
        cache.admit(item.key, item.value, item.version, 64, env.now,
                    reply.expiry_deadline(item, env.now))
    print(f"  cached {len(cache)} attribute values, "
          f"{len(local)} surrogates in the cache table")

    # --- Query 2 (connected): repeat -> existent list covers it all ----
    print("Q2: same query again (fully satisfied from the cache table)")
    hits = [
        (oid, a)
        for oid in qualifying
        for a in wanted
        if local.read_attribute(oid, a, env.now) is not None
    ]
    print(f"  {len(hits)} locally answered attribute reads, "
          "no wireless traffic at all")

    # --- Query 3 (disconnected): the transparency argument -------------
    print("Q3: in the hotel basement (disconnected), same query")
    answered = sum(
        1
        for oid in qualifying
        for a in wanted
        if local.read_attribute(oid, a, env.now) is not None
    )
    missing = sum(
        1
        for oid in database.oids("PlacesToStay")
        if local.surrogate_for(oid) is None
    )
    print(f"  {answered} reads served from local storage; "
          f"{missing} hotels were never cached and stay unavailable")
    print("  the attribute *methods* simply return None for those — the "
          "application code is identical connected or not")


if __name__ == "__main__":
    main()
